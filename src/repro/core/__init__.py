"""The paper's contribution: C-PNN evaluation with probabilistic verifiers.

Public entry points:

* :class:`~repro.core.engine.CPNNEngine` — full pipeline with the
  Basic / Refine / VR strategies of Section V;
* :class:`~repro.core.types.CPNNQuery` — query point + threshold +
  tolerance (Definition 1);
* :class:`~repro.core.subregions.SubregionTable` and the verifiers in
  :mod:`repro.core.verifiers` for direct use;
* :mod:`repro.core.knn` — the probabilistic k-NN extension.
"""

from repro.core.batch import BatchResult, DistributionCache
from repro.core.bounds import ProbabilityBound
from repro.core.classifier import classify
from repro.core.engine import CPNNEngine, EngineConfig, Strategy
from repro.core.knn import (
    CKNNEngine,
    knn_probability_bounds,
    knn_qualification_probabilities,
)
from repro.core.range_query import constrained_range_query, range_probabilities
from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.storage import SubregionStore, subregion_bounds_from_store
from repro.core.subregions import SubregionTable
from repro.core.types import AnswerRecord, CPNNQuery, CPNNResult, Label, PhaseTimings
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
    VerifierChain,
    default_chain,
)

__all__ = [
    "AnswerRecord",
    "BatchResult",
    "CKNNEngine",
    "CPNNEngine",
    "CPNNQuery",
    "CPNNResult",
    "CandidateStates",
    "DistributionCache",
    "EngineConfig",
    "Label",
    "LowerSubregionVerifier",
    "PhaseTimings",
    "ProbabilityBound",
    "Refiner",
    "RightmostSubregionVerifier",
    "Strategy",
    "SubregionStore",
    "SubregionTable",
    "UpperSubregionVerifier",
    "VerifierChain",
    "classify",
    "constrained_range_query",
    "default_chain",
    "knn_probability_bounds",
    "knn_qualification_probabilities",
    "range_probabilities",
    "subregion_bounds_from_store",
]
