"""The paper's contribution: probabilistic-neighborhood queries with verifiers.

Public entry points:

* :class:`~repro.core.engine.UncertainEngine` — the unified engine:
  ``execute``/``execute_batch`` over typed query specs, plus
  ``explain`` (:class:`~repro.core.engine.CPNNEngine` remains as the
  legacy alias);
* :class:`~repro.core.types.QuerySpec` and its concrete specs
  :class:`~repro.core.types.CPNNQuery` (Definition 1),
  :class:`~repro.core.types.CKNNQuery`,
  :class:`~repro.core.types.CRangeQuery`;
* :class:`~repro.core.types.QueryResult` /
  :class:`~repro.core.batch.BatchResult` — the uniform result shapes;
* :class:`~repro.core.subregions.SubregionTable` and the verifiers in
  :mod:`repro.core.verifiers` for direct use;
* :mod:`repro.core.knn` / :mod:`repro.core.range_query` — the scalar
  reference implementations of the k-NN and range extensions (their
  engine-routed equivalents are bit-identical).
"""

from repro.core.batch import BatchResult, DistributionCache
from repro.core.bounds import ProbabilityBound
from repro.core.classifier import classify
from repro.core.engine import (
    CPNNEngine,
    EngineConfig,
    ShardedEngine,
    Strategy,
    UncertainEngine,
)
from repro.core.knn import (
    CKNNEngine,
    knn_probability_bounds,
    knn_qualification_probabilities,
)
from repro.core.range_query import constrained_range_query, range_probabilities
from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.storage import SubregionStore, subregion_bounds_from_store
from repro.core.subregions import SubregionTable
from repro.core.types import (
    AnswerRecord,
    CKNNQuery,
    CPNNQuery,
    CPNNResult,
    CRangeQuery,
    Label,
    PhaseTimings,
    QueryPlan,
    QueryResult,
    QuerySpec,
)
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
    VerifierChain,
    default_chain,
)

__all__ = [
    "AnswerRecord",
    "BatchResult",
    "CKNNEngine",
    "CKNNQuery",
    "CPNNEngine",
    "CPNNQuery",
    "CPNNResult",
    "CRangeQuery",
    "CandidateStates",
    "DistributionCache",
    "EngineConfig",
    "Label",
    "LowerSubregionVerifier",
    "PhaseTimings",
    "ProbabilityBound",
    "QueryPlan",
    "QueryResult",
    "QuerySpec",
    "Refiner",
    "RightmostSubregionVerifier",
    "ShardedEngine",
    "Strategy",
    "SubregionStore",
    "SubregionTable",
    "UncertainEngine",
    "UpperSubregionVerifier",
    "VerifierChain",
    "classify",
    "constrained_range_query",
    "default_chain",
    "knn_probability_bounds",
    "knn_qualification_probabilities",
    "range_probabilities",
    "subregion_bounds_from_store",
]
