"""The classifier of Section III-B: label bounds against Definition 1.

Given an object's probability bound ``[p.l, p.u]`` and the query's
threshold ``P`` / tolerance ``Δ``:

* **satisfy** — ``p.u ≥ P`` and (``p.l ≥ P`` or ``p.u − p.l ≤ Δ``);
  the object is an answer (Figure 4 cases (a) and (b));
* **fail** — ``p.u < P``; it can never be an answer (case (c));
* **unknown** — anything else (case (d)); the bound must shrink before
  a decision is possible.

Comparisons are closed (``≥``) to match Figure 4(a), where the bound
[0.80, 0.96] with ``P = 0.8`` *satisfies*.  A vectorised variant is
provided for the numpy-based verification loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import ProbabilityBound
from repro.core.types import Label

__all__ = ["classify", "classify_arrays"]

#: Integer codes used by the vectorised classifier.
_UNKNOWN, _SATISFY, _FAIL = 0, 1, 2

_CODE_TO_LABEL = {_UNKNOWN: Label.UNKNOWN, _SATISFY: Label.SATISFY, _FAIL: Label.FAIL}


def classify(bound: ProbabilityBound, threshold: float, tolerance: float) -> Label:
    """Label a single probability bound per Definition 1."""
    if bound.upper < threshold:
        return Label.FAIL
    if bound.lower >= threshold or bound.width <= tolerance:
        return Label.SATISFY
    return Label.UNKNOWN


def classify_arrays(
    lower: np.ndarray,
    upper: np.ndarray,
    threshold: float,
    tolerance: float,
) -> np.ndarray:
    """Vectorised :func:`classify` over parallel bound arrays.

    Returns an int8 array of codes: 0 = unknown, 1 = satisfy, 2 = fail
    (decode with :func:`label_from_code`).
    """
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    codes = np.zeros(lower.shape, dtype=np.int8)
    fail = upper < threshold
    satisfy = ~fail & ((lower >= threshold) | (upper - lower <= tolerance))
    codes[fail] = _FAIL
    codes[satisfy] = _SATISFY
    return codes


def label_from_code(code: int) -> Label:
    """Decode a vectorised classifier code into a :class:`Label`."""
    return _CODE_TO_LABEL[int(code)]
