"""The unified query engine: one façade over C-PNN, k-NN, and range.

The paper's framework (Section III) is one pipeline — filtering →
verification → refinement — and :class:`UncertainEngine` serves all
three query families through it behind a single typed surface:

* :meth:`UncertainEngine.execute` takes a
  :class:`~repro.core.types.QuerySpec` (:class:`CPNNQuery`,
  :class:`CKNNQuery`, or :class:`CRangeQuery`), dispatches on its type,
  and always returns the same :class:`~repro.core.types.QueryResult`
  shape;
* :meth:`UncertainEngine.execute_batch` does the same for a whole
  (possibly mixed) batch of specs, amortising filtering, distribution
  construction, and verification batch-wide;
* :meth:`UncertainEngine.explain` returns the evaluation plan for a
  spec without computing any probability.

For C-PNN specs the engine implements the three evaluation strategies
compared in Section V:

* **Basic** — exact qualification probabilities for every candidate
  (numerical integration per [5]); answers are ``{i : p_i ≥ P}``.
* **Refine** — skip verification, run *incremental refinement*
  directly (per-subregion exact integration with early classification).
* **VR** — the paper's proposal: the verifier chain (RS → L-SR →
  U-SR) settles most candidates algebraically; survivors fall through
  to incremental refinement seeded with the verifier's per-subregion
  bounds.

k-NN and range specs route through the same substrate — MBR filtering
(:mod:`repro.index.filtering`), the LRU distribution cache
(:mod:`repro.core.batch`), and the columnar kernels
(:mod:`repro.uncertainty.columnar`) — with answers bit-identical to
their reference scalar paths (:class:`~repro.core.knn.CKNNEngine`,
:func:`~repro.core.range_query.constrained_range_query`); see
DESIGN.md §3.

All strategies share the same filtering phase and produce identical
answer sets when the tolerance is 0 (a property-based test); with a
positive tolerance VR/Refine may legitimately return extra objects
whose probability lies within Δ below the threshold (Definition 1).

Per-phase wall-clock timings are recorded to reproduce Figures 9–11
and 14.  The four phases (filtering, initialisation, verification,
refinement) are disjoint; the paper's three-phase accounting charges
initialisation (distance pdfs/cdfs + the subregion table) to
verification, which the Figure 11 driver reconstructs by summing the
two fields.

The pre-façade entry points — :meth:`UncertainEngine.query`,
:meth:`UncertainEngine.query_batch`, and the :class:`CPNNEngine` name —
remain as thin deprecation shims (DESIGN.md §7).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.core.batch import (
    BatchResult,
    CachedTable,
    DistributionCache,
    TableCache,
    distributions_for,
    point_key,
)
from repro.core.bounds import DEFAULT_BOUND_PAD
from repro.core.knn import knn_routed_eval
from repro.core.range_query import range_routed_eval
from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import (
    AnswerRecord,
    CKNNQuery,
    CPNNQuery,
    CRangeQuery,
    Label,
    PhaseTimings,
    QueryPlan,
    QueryResult,
    QuerySpec,
)
from repro.core.verifiers.chain import VerifierChain, default_chain
from repro.index.filtering import (
    BatchMbrFilter,
    FilterResult,
    PnnFilter,
    filter_candidates,
)
from repro.index.str_pack import str_bulk_load

__all__ = ["CPNNEngine", "EngineConfig", "Strategy", "UncertainEngine"]

_UNKNOWN, _SATISFY, _FAIL = 0, 1, 2

_CODE_TO_LABEL = {_UNKNOWN: Label.UNKNOWN, _SATISFY: Label.SATISFY, _FAIL: Label.FAIL}


def _result_sig(query: CPNNQuery, strategy: str) -> tuple:
    """Memoisation key of a C-PNN outcome within one cached table.

    The pipeline's output is a deterministic function of the table
    (fixed per cache entry), the spec's type and constraints, the
    strategy, and the engine config (fixed per engine) — so this tuple
    identifies the result exactly.
    """
    return (strategy, type(query), query.threshold, query.tolerance)


def _replay_result(result: QueryResult) -> QueryResult:
    """A fresh :class:`QueryResult` replaying a memoised outcome.

    Copies the mutable containers *and* the (mutable)
    :class:`AnswerRecord` instances, so neither the stored snapshot nor
    any replayed result shares state with what a caller received — a
    caller mutating a record cannot corrupt later replays.  Timings are
    zero (nothing ran), matching the batch path's convention for
    shared phases.
    """
    return QueryResult(
        answers=result.answers,
        records=[
            AnswerRecord(
                key=r.key,
                label=r.label,
                lower=r.lower,
                upper=r.upper,
                exact=r.exact,
            )
            for r in result.records
        ],
        fmin=result.fmin,
        unknown_after_verifier=dict(result.unknown_after_verifier),
        finished_after_verification=result.finished_after_verification,
        refined_objects=result.refined_objects,
    )


class Strategy:
    """String constants naming the three evaluation strategies."""

    BASIC = "basic"
    REFINE = "refine"
    VR = "vr"

    ALL = (BASIC, REFINE, VR)


@dataclass
class EngineConfig:
    """Tuning knobs for :class:`UncertainEngine`.

    Attributes
    ----------
    strategy:
        One of :class:`Strategy`'s constants; default is the paper's
        proposed VR.
    chain_factory:
        Builds the verifier chain used by VR (default: RS → L-SR →
        U-SR, Figure 5's order).  The engine calls it once at
        construction and reuses the chain across queries — verifiers
        are stateless, so per-query rebuilding would only add
        allocation overhead to the hot path.
    pipeline:
        Optional hook composing verifier chains *per spec type*: called
        with the spec's class (e.g. :class:`CPNNQuery`) the first time
        that type is executed, it may return a
        :class:`~repro.core.verifiers.chain.VerifierChain` to use for
        that family, or ``None`` to keep ``chain_factory``'s chain.
        The result is cached per type.  Today only specs evaluated
        through the subregion verification framework (C-PNN) consult
        it; the type argument exists so future families can branch
        without changing the signature.
    bound_pad:
        Floating-point guard added around computed bounds
        (DESIGN.md §5).
    refinement_order:
        ``'widest'`` integrates the subregion with the widest remaining
        bound gap first (fastest classification); ``'left'`` follows
        ascending distance.
    quadrature_margin:
        Extra Gauss–Legendre nodes beyond the exactness requirement.
    use_rtree:
        Filter through a bulk-loaded R-tree (True, the paper's setup)
        or a linear scan (False, for baselining the index itself).
    rtree_max_entries:
        Node capacity of the bulk-loaded R-tree.
    grid_refinement:
        Split every inner subregion into this many parts before
        verification: tighter verifier bounds at proportionally higher
        verification cost (an extension beyond the paper; see the
        grid-refinement ablation bench).
    distribution_cache_size:
        Capacity of the LRU cache of distance distributions used by
        the batch paths and the routed k-NN/range paths (entries are
        keyed by ``(object, query point)``, so repeated probes skip the
        histogram fold).  0 disables the cache.
    table_cache_size:
        Capacity (in query points) of the LRU cache of fully built
        subregion tables used by the C-PNN batch path.  A repeated
        probe skips filtering *and* initialisation for that point.
        Dynamic updates invalidate entries *selectively*: only points
        whose candidate set the mutated object's MBR can affect are
        dropped (DESIGN.md §11); the rest stay warm.  0 disables the
        cache.  Note the bound is entry-count, not bytes: each table
        pins its distributions plus O(|C|·M) matrices, so size this to
        the working set of hot probe points, not higher.
    """

    strategy: str = Strategy.VR
    chain_factory: Callable[[], VerifierChain] = default_chain
    pipeline: Callable[[type], VerifierChain | None] | None = None
    bound_pad: float = DEFAULT_BOUND_PAD
    refinement_order: str = "widest"
    quadrature_margin: int = 1
    use_rtree: bool = True
    rtree_max_entries: int = 16
    grid_refinement: int = 1
    distribution_cache_size: int = 65536
    table_cache_size: int = 256

    def __post_init__(self) -> None:
        if self.strategy not in Strategy.ALL:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.refinement_order not in ("widest", "left"):
            raise ValueError("refinement_order must be 'widest' or 'left'")
        if self.grid_refinement < 1:
            raise ValueError("grid_refinement must be >= 1")
        if self.distribution_cache_size < 0:
            raise ValueError("distribution_cache_size must be >= 0")
        if self.table_cache_size < 0:
            raise ValueError("table_cache_size must be >= 0")
        if self.pipeline is not None and not callable(self.pipeline):
            raise ValueError("pipeline must be callable or None")


@dataclass
class _Prepared:
    """Everything shared by the post-filter phases of one query."""

    filter_result: FilterResult
    table: SubregionTable
    states: CandidateStates
    refiner: Refiner
    timings: PhaseTimings = field(default_factory=PhaseTimings)


class UncertainEngine:
    """Evaluates probabilistic queries over uncertain objects.

    One engine serves all three query families — C-PNN (the paper's
    Definition 1), constrained probabilistic k-NN, and constrained
    probabilistic range — through :meth:`execute` /
    :meth:`execute_batch`, which dispatch on the spec type and share
    the filtering / caching / columnar substrate.

    Parameters
    ----------
    objects:
        Any sequence of objects satisfying the
        :class:`~repro.uncertainty.objects.SpatialUncertain` protocol
        (1-D intervals, 2-D disks/segments/rectangles, or a mixture of
        same-dimension objects).  May be empty: an empty engine answers
        every ``execute``/``execute_batch`` spec with an empty result
        (DESIGN.md §8) until objects are inserted.
    config:
        Optional :class:`EngineConfig`.
    """

    def __init__(self, objects: Sequence, config: EngineConfig | None = None):
        self._objects = list(objects)
        dims = {obj.mbr.dim for obj in self._objects}
        if len(dims) > 1:
            raise ValueError(
                f"all objects must share one dimensionality, got {sorted(dims)}"
            )
        #: Parallel list of object keys (same order as ``_objects``):
        #: O(1) duplicate detection plus C-level victim lookup on
        #: ``remove`` — an update stream must not pay a Python-level
        #: attribute-access scan per removal.
        self._key_list = [obj.key for obj in self._objects]
        self._key_set = set(self._key_list)
        #: Lazy key→position map serving the O(1) lookups of
        #: :meth:`replace`; ``None`` means stale (positions shifted by
        #: a removal).  Appends and in-place replacements keep it
        #: valid, so a dead-reckoning stream builds it once.
        self._key_index: dict[Hashable, int] | None = None
        if len(self._key_set) != len(self._key_list):
            seen: set = set()
            duplicate = next(
                k for k in self._key_list if k in seen or seen.add(k)
            )
            raise ValueError(
                f"duplicate object key {duplicate!r}: keys identify objects "
                "for remove(), so they must be unique"
            )
        self._config = config or EngineConfig()
        #: The verifier chain, built once and reused by every VR query
        #: (verifiers are stateless; see EngineConfig.chain_factory).
        self._chain = self._config.chain_factory()
        #: Per-spec-type chains resolved through EngineConfig.pipeline.
        self._chains: dict[type, VerifierChain] = {}
        self._filter: PnnFilter | Callable | None = None
        #: Deferred single-query index maintenance: dynamic updates are
        #: queued as ("add"/"del", obj) pairs and folded into the
        #: R-tree only when a single-query path next needs it
        #: (:meth:`_single_filter`).  Batch paths filter through
        #: :class:`BatchMbrFilter`, so an update stream that is probed
        #: via ``execute_batch`` never pays Python tree surgery at all.
        #: Once the queue passes the rebuild threshold it is discarded
        #: and ``_filter_stale`` is set instead — a bounded marker, so a
        #: batch-only stream cannot pin unbounded stale objects.
        self._pending_tree_ops: list[tuple[str, object]] = []
        self._filter_stale = False
        #: Deferred table-cache invalidation: each mutation queues its
        #: MBR(s); the next C-PNN batch folds the whole queue into the
        #: cache with one vectorised sweep (exact per-box tests, no
        #: per-update numpy overhead).  See DESIGN.md §11.
        self._pending_invalidation: list[tuple] = []
        self._build_filter()
        #: Vectorised whole-batch filter shared by query_batch and the
        #: routed k-NN/range paths.  Built with the rest of the index
        #: substrate for R-tree engines (it filters over the same MBRs
        #: the tree holds) and maintained *incrementally* across
        #: dynamic updates: insert appends a coordinate row, remove
        #: masks one (DESIGN.md §11).
        self._batch_filter: BatchMbrFilter | None = (
            BatchMbrFilter(self._objects)
            if self._config.use_rtree and self._objects
            else None
        )
        self._distribution_cache: DistributionCache | None = (
            DistributionCache(self._config.distribution_cache_size)
            if self._config.distribution_cache_size
            else None
        )
        #: LRU of fully built subregion tables keyed by query point,
        #: selectively invalidated on dynamic updates (DESIGN.md §11).
        self._table_cache: TableCache | None = (
            TableCache(self._config.table_cache_size)
            if self._config.table_cache_size
            else None
        )

    def _build_filter(self) -> None:
        """(Re)build the single-query PNN filter for the object set."""
        self._pending_tree_ops.clear()
        self._filter_stale = False
        if not self._objects:
            self._filter = None
        elif self._config.use_rtree:
            tree = str_bulk_load(
                [(obj.mbr, obj) for obj in self._objects],
                max_entries=self._config.rtree_max_entries,
            )
            self._filter = PnnFilter(tree)
        else:
            self._filter = lambda q: filter_candidates(self._objects, q)

    def _single_filter(self) -> PnnFilter | Callable:
        """The single-query filter, with deferred maintenance applied.

        Dynamic updates queue their index work (DESIGN.md §11); this
        accessor settles the queue.  Small queues are folded into the
        tree with incremental Guttman insert/delete; past
        ``max(4, N/300)`` pending operations a fresh STR bulk load is
        cheaper than the per-operation tree surgery (measured: one
        Python-level insert costs ≈ the bulk-load share of ~300
        objects), so the queue collapses into one rebuild.
        """
        if self._filter_stale:
            self._build_filter()
            return self._filter
        pending = self._pending_tree_ops
        if not pending:
            return self._filter
        assert isinstance(self._filter, PnnFilter)
        tree = self._filter.tree
        while pending:
            op, obj = pending[0]
            if op == "add":
                tree.insert(obj.mbr, obj)
            elif not tree.delete(obj.mbr, lambda item: item is obj):
                raise RuntimeError(
                    "index out of sync with object list: "
                    f"object {obj.key!r} was tracked but not indexed"
                )
            pending.pop(0)
        return self._filter

    def _queue_tree_op(self, op: str, obj) -> None:
        """Queue one deferred R-tree operation, with a bounded queue.

        Past ``max(4, N/300)`` pending operations a fresh STR bulk
        load beats the per-operation Guttman surgery anyway, so the
        queue is discarded and the filter just marked stale — keeping
        memory bounded no matter how long a batch-only update stream
        runs between single queries.
        """
        if self._filter_stale:
            return
        pending = self._pending_tree_ops
        pending.append((op, obj))
        if len(pending) > max(4, len(self._objects) // 300):
            pending.clear()
            self._filter_stale = True

    # ------------------------------------------------------------------

    @property
    def objects(self) -> tuple:
        """Snapshot of the object set (internally a mutable list)."""
        return tuple(self._objects)

    @property
    def config(self) -> EngineConfig:
        return self._config

    def __len__(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Dynamic updates — incrementally maintained, no rebuilds
    # (DESIGN.md §11): the R-tree absorbs insert/delete, the
    # whole-batch MBR filter appends/masks coordinate rows, and the
    # table cache drops only the query points the mutated object's MBR
    # can affect.
    # ------------------------------------------------------------------

    def insert(self, obj) -> None:
        """Add an uncertain object; later queries see it immediately.

        Raises :class:`ValueError` if an object with the same key is
        already present — keys identify objects for :meth:`remove`, so
        a silent duplicate would leave a shadowed object behind the
        first removal.
        """
        if obj.key in self._key_set:
            raise ValueError(
                f"duplicate object key {obj.key!r}: remove() the existing "
                "object before inserting its replacement"
            )
        if self._objects and obj.mbr.dim != self._objects[0].mbr.dim:
            raise ValueError("object dimensionality mismatch")
        was_empty = not self._objects
        self._objects.append(obj)
        self._key_list.append(obj.key)
        self._key_set.add(obj.key)
        if self._key_index is not None:
            self._key_index[obj.key] = len(self._key_list) - 1
        if was_empty:
            self._build_filter()
        elif isinstance(self._filter, PnnFilter):
            self._queue_tree_op("add", obj)
        if self._batch_filter is not None:
            self._batch_filter.append(obj)
        self._queue_invalidation(obj)

    def remove(self, key: Hashable) -> bool:
        """Remove the object with identifier ``key``; True if found.

        The engine may become empty, in which case the legacy ``query``
        entry points raise until an object is inserted again (the
        ``execute`` façade returns empty results instead, DESIGN.md §8).
        """
        if self._key_index is not None:
            position = self._key_index.get(key)
            if position is None:
                return False
            index = position
        else:
            try:
                index = self._key_list.index(key)
            except ValueError:
                return False
        victim = self._objects[index]
        del self._objects[index]
        del self._key_list[index]
        self._key_set.discard(key)
        self._key_index = None  # later positions shifted
        if self._batch_filter is not None:
            self._batch_filter.remove_at(index)
            if not self._objects:
                self._batch_filter = None
        self._queue_invalidation(victim)
        if self._distribution_cache is not None:
            self._distribution_cache.evict_object(victim)
        if isinstance(self._filter, PnnFilter):
            self._queue_tree_op("del", victim)
        if not self._objects:
            self._filter = None
            self._pending_tree_ops.clear()
            self._filter_stale = False
        return True

    def replace(self, key: Hashable, obj) -> None:
        """Replace the object identified by ``key`` with ``obj``, in place.

        The dead-reckoning primitive (Section I): a position report
        swaps a stale uncertainty region for a fresh one.  Semantically
        equivalent to ``remove(key)`` + ``insert(obj)`` except that the
        object keeps its position in the engine's object order, which
        lets every maintenance structure update in O(1)-ish work: the
        batch filter overwrites one coordinate row in place, the
        key→position map stays valid, and both the old and the new MBR
        are queued for the deferred table-cache sweep (exact per-box
        candidate tests, DESIGN.md §11).

        ``obj`` may keep the same key or bring a new one; a new key
        must not collide with another object's.  Raises
        :class:`KeyError` when ``key`` is not present.
        """
        index = self._position_of(key)
        if index is None:
            raise KeyError(key)
        if obj.key != key and obj.key in self._key_set:
            raise ValueError(
                f"duplicate object key {obj.key!r}: remove() the existing "
                "object before inserting its replacement"
            )
        if obj.mbr.dim != self._objects[0].mbr.dim:
            raise ValueError("object dimensionality mismatch")
        victim = self._objects[index]
        self._objects[index] = obj
        if obj.key != key:
            self._key_list[index] = obj.key
            self._key_set.discard(key)
            self._key_set.add(obj.key)
            if self._key_index is not None:
                del self._key_index[key]
                self._key_index[obj.key] = index
        if self._batch_filter is not None:
            self._batch_filter.replace_at(index, obj)
        if isinstance(self._filter, PnnFilter):
            self._queue_tree_op("del", victim)
            self._queue_tree_op("add", obj)
        self._queue_invalidation(victim)
        self._queue_invalidation(obj)
        if self._distribution_cache is not None:
            self._distribution_cache.evict_object(victim)

    def _position_of(self, key: Hashable) -> int | None:
        """Position of ``key`` in the object order, via the lazy map."""
        if key not in self._key_set:
            return None
        if self._key_index is None:
            self._key_index = {k: i for i, k in enumerate(self._key_list)}
        return self._key_index[key]

    def _queue_invalidation(self, obj) -> None:
        """Queue one mutation's MBR for the deferred table-cache sweep.

        A cached table for point ``q`` stays exact across an
        insert/removal of ``obj`` unless ``obj`` belongs to (insert) or
        belonged to (remove) ``q``'s candidate set — equivalently,
        unless ``mindist(obj, q) <= f_min(q)``; DESIGN.md §11 proves
        both directions.  Everything else survives with its
        distributions and matrices warm.  Cached distance distributions
        are pure functions of (object, point) and are never touched
        here; :meth:`remove` evicts only the removed object's entries.
        """
        if self._table_cache is not None:
            mbr = obj.mbr
            self._pending_invalidation.append((mbr.lows, mbr.highs))

    def _flush_table_invalidations(self) -> None:
        """Fold queued mutation MBRs into the table cache, one sweep.

        Must run before any table-cache read; :meth:`_pnn_batch` (the
        only reader) and :meth:`explain` call it.
        """
        if self._table_cache is None or not self._pending_invalidation:
            return
        boxes = self._pending_invalidation
        self._pending_invalidation = []
        self._table_cache.invalidate_boxes(
            np.array([lows for lows, _ in boxes], dtype=float),
            np.array([highs for _, highs in boxes], dtype=float),
        )

    # ------------------------------------------------------------------
    # The unified façade: execute / execute_batch / explain
    # ------------------------------------------------------------------

    def execute(self, spec, strategy: str | None = None) -> QueryResult:
        """Answer one query spec; dispatches on the spec type.

        ``spec`` may be a :class:`CPNNQuery`, :class:`CKNNQuery`,
        :class:`CRangeQuery`, or a bare query point (normalised to a
        :class:`CPNNQuery` with the Section V defaults).  ``strategy``
        overrides the configured evaluation strategy for C-PNN specs;
        it is validated for every spec but otherwise ignored by the
        other families (they have a single evaluation pipeline).

        Always returns a :class:`~repro.core.types.QueryResult`; an
        empty engine yields an empty result for every spec type.
        """
        spec = self._as_spec(spec)
        strategy = self._as_strategy(strategy)
        if not self._objects:
            return QueryResult(answers=(), spec=spec)
        if isinstance(spec, CKNNQuery):
            results, filter_seconds = self._knn_group([spec])
            results[0].timings.filtering = filter_seconds
            return results[0]
        if isinstance(spec, CRangeQuery):
            results, filter_seconds = self._range_group([spec])
            results[0].timings.filtering = filter_seconds
            return results[0]
        result = self._execute_pnn(spec, strategy)
        result.spec = spec
        return result

    def execute_batch(self, specs: Sequence, strategy: str | None = None) -> BatchResult:
        """Answer a batch of specs, amortising work batch-wide.

        Semantically equivalent to ``[execute(s) for s in specs]`` —
        per-candidate arithmetic is shared with the single-spec path,
        so answers and records agree exactly — but work is restructured
        around the batch: each family's filtering runs as one
        vectorised MBR sweep, distance distributions go through the
        engine's LRU cache, and C-PNN verification/refinement run as
        flat sweeps (see :mod:`repro.core.batch`).  Specs of different
        types may be mixed freely; ``results`` aligns with ``specs``.

        An empty ``specs`` sequence yields an empty
        :class:`~repro.core.batch.BatchResult`; an empty engine yields
        one empty :class:`~repro.core.types.QueryResult` per spec.
        """
        specs = [self._as_spec(s) for s in specs]
        self._as_strategy(strategy)  # reject typos even in k-NN/range-only batches
        batch = BatchResult()
        if not specs:
            return batch
        if not self._objects:
            batch.results = [QueryResult(answers=(), spec=s) for s in specs]
            return batch
        slots: list[QueryResult | None] = [None] * len(specs)
        knn_idx = [i for i, s in enumerate(specs) if isinstance(s, CKNNQuery)]
        range_idx = [i for i, s in enumerate(specs) if isinstance(s, CRangeQuery)]
        pnn_idx = [
            i
            for i, s in enumerate(specs)
            if not isinstance(s, (CKNNQuery, CRangeQuery))
        ]
        if pnn_idx:
            sub = self._pnn_batch([specs[i] for i in pnn_idx], strategy)
            for i, result in zip(pnn_idx, sub.results):
                slots[i] = result
            for phase in ("filtering", "initialization", "verification", "refinement"):
                setattr(
                    batch.timings,
                    phase,
                    getattr(batch.timings, phase) + getattr(sub.timings, phase),
                )
            batch.cache_hits += sub.cache_hits
            batch.cache_misses += sub.cache_misses
            batch.table_hits += sub.table_hits
            batch.table_misses += sub.table_misses
            batch.result_hits += sub.result_hits
        for indices, runner in ((knn_idx, self._knn_group), (range_idx, self._range_group)):
            if not indices:
                continue
            results, filter_seconds = runner([specs[i] for i in indices])
            batch.timings.filtering += filter_seconds
            for i, result in zip(indices, results):
                slots[i] = result
                timings = result.timings
                batch.timings.initialization += timings.initialization
                batch.timings.verification += timings.verification
                batch.timings.refinement += timings.refinement
                batch.cache_hits += result.cache_hits
                batch.cache_misses += result.cache_misses
        batch.results = slots
        return batch

    def explain(self, spec, strategy: str | None = None) -> QueryPlan:
        """The evaluation plan for ``spec``, without computing answers.

        Runs only the filtering phase (cheap — no distribution is
        built, no probability computed) and reports which pipeline
        stages ``execute`` would run, what the filter keeps, and the
        engine's cache state.
        """
        spec = self._as_spec(spec)
        self._flush_table_invalidations()  # report live entry counts
        caches = {}
        cache = self._distribution_cache
        caches["distribution_cache"] = (
            {
                "maxsize": cache.maxsize,
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
            }
            if cache is not None
            else "disabled"
        )
        table_cache = self._table_cache
        caches["table_cache"] = (
            {"maxsize": table_cache.maxsize, "entries": len(table_cache)}
            if table_cache is not None
            else "disabled"
        )
        n = len(self._objects)
        if isinstance(spec, CKNNQuery):
            family = "cknn"
        elif isinstance(spec, CRangeQuery):
            family = "crange"
        else:
            family = "cpnn"
        if not self._objects:
            return QueryPlan(
                spec=spec,
                family=family,
                strategy=None,
                index="none",
                stages=["empty engine: return an empty result"],
                caches=caches,
            )
        index = "rtree" if isinstance(self._filter, PnnFilter) else "linear"
        if family == "cknn":
            k = min(spec.k, n)
            if k >= n:
                return QueryPlan(
                    spec=spec,
                    family=family,
                    strategy=None,
                    index=index,
                    stages=[
                        f"k={spec.k} covers all {n} objects: "
                        "every object qualifies with probability 1"
                    ],
                    candidates=n,
                    pruned=0,
                    fmin=float("inf"),
                    caches=caches,
                )
            survivors, fmin_k = self._ensure_batch_filter().kth_filter(
                [spec.q], [k]
            )[0]
            return QueryPlan(
                spec=spec,
                family=family,
                strategy=None,
                index=index,
                stages=[
                    f"MBR filtering with f_min^{k} (vectorised sweep)",
                    "distance distributions for survivors (LRU cache)",
                    "RS-style k-NN bounds via columnar cdf kernels",
                    "exact Poisson-binomial integration for undecided objects",
                ],
                candidates=int(survivors.size),
                pruned=n - int(survivors.size),
                fmin=fmin_k,
                caches=caches,
            )
        if family == "crange":
            mindist, maxdist = self._ensure_batch_filter().matrices([spec.q])
            sure_in = int(np.count_nonzero(maxdist[0] <= spec.radius))
            sure_out = int(np.count_nonzero(mindist[0] > spec.radius))
            straddle = n - sure_in - sure_out
            return QueryPlan(
                spec=spec,
                family=family,
                strategy=None,
                index=index,
                stages=[
                    "MBR range classification (vectorised sweep): "
                    f"{sure_in} certainly inside, {sure_out} certainly outside",
                    f"exact region-distance re-check for {straddle} straddling objects",
                    "cdf(radius) via columnar kernel for true straddlers (LRU cache)",
                ],
                candidates=straddle,
                pruned=sure_in + sure_out,
                fmin=float(spec.radius),
                caches=caches,
            )
        strategy = self._as_strategy(strategy)
        filter_result = self._single_filter()(spec.q)
        stages = ["PNN filtering (f_min pruning rule)"]
        verifiers: tuple[str, ...] = ()
        if strategy == Strategy.VR:
            chain = self._chain_for(type(spec))
            verifiers = tuple(v.name for v in chain.verifiers)
            stages += [
                "distance distributions + subregion table",
                "verifier chain: " + " → ".join(verifiers),
                "incremental refinement of surviving candidates",
            ]
        elif strategy == Strategy.REFINE:
            stages += [
                "distance distributions + subregion table",
                "incremental refinement of all candidates",
            ]
        else:
            stages += [
                "distance distributions + subregion table",
                "exact integration of every candidate (Basic)",
            ]
        return QueryPlan(
            spec=spec,
            family=family,
            strategy=strategy,
            index=index,
            stages=stages,
            verifiers=verifiers,
            candidates=len(filter_result.candidates),
            pruned=n - len(filter_result.candidates),
            fmin=filter_result.fmin,
            caches=caches,
        )

    # ------------------------------------------------------------------
    # Legacy entry points (deprecation shims; see DESIGN.md §7)
    # ------------------------------------------------------------------

    def query(
        self,
        q,
        threshold: float | None = None,
        tolerance: float | None = None,
        strategy: str | None = None,
    ) -> QueryResult:
        """Answer a C-PNN query (deprecated; use :meth:`execute`).

        ``q`` may be a bare query point or a prepared
        :class:`~repro.core.types.CPNNQuery`; ``threshold``/
        ``tolerance`` override the query's values when given.  Unlike
        :meth:`execute`, raises :class:`ValueError` on an empty engine
        (the pre-façade behaviour).
        """
        warnings.warn(
            "query() is deprecated; use execute(CPNNQuery(q, threshold, "
            "tolerance)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not self._objects:
            raise ValueError("cannot query an empty engine (insert objects first)")
        query = self._as_query(q, threshold, tolerance)
        result = self._execute_pnn(query, self._as_strategy(strategy))
        result.spec = query
        return result

    def query_batch(
        self,
        points: Sequence,
        threshold: float | None = None,
        tolerance: float | None = None,
        strategy: str | None = None,
    ) -> BatchResult:
        """Batch C-PNN evaluation (deprecated; use :meth:`execute_batch`).

        Semantically equivalent to calling :meth:`query` once per point
        with the same ``threshold``/``tolerance``/``strategy``; see
        :meth:`execute_batch` for the amortisation details.  Raises
        :class:`ValueError` on an empty engine when ``points`` is
        non-empty (the pre-façade behaviour).
        """
        warnings.warn(
            "query_batch() is deprecated; use execute_batch([CPNNQuery(...)"
            ", ...]) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._as_strategy(strategy)  # validate even for an empty batch
        points = list(points)
        if not points:
            return BatchResult()
        if not self._objects:
            raise ValueError("cannot query an empty engine (insert objects first)")
        queries = [self._as_query(p, threshold, tolerance) for p in points]
        return self._pnn_batch(queries, strategy)

    def pnn(self, q) -> dict[Hashable, float]:
        """Exact PNN: qualification probability of every candidate.

        Objects pruned by filtering have probability 0 and are omitted,
        matching the paper's PNN semantics of returning only non-zero
        probabilities.
        """
        if not self._objects:
            raise ValueError("cannot query an empty engine (insert objects first)")
        query = CPNNQuery(q, threshold=1.0, tolerance=0.0)
        prepared = self._prepare(query)
        probabilities = prepared.refiner.exact_all()
        return {
            key: float(p)
            for key, p in zip(prepared.table.keys, probabilities)
        }

    # ------------------------------------------------------------------
    # Spec/strategy normalisation and shared filtering helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _as_spec(spec) -> QuerySpec:
        """Normalise a bare point into a default CPNNQuery."""
        if isinstance(spec, QuerySpec):
            return spec
        return CPNNQuery(spec)

    @staticmethod
    def _as_query(
        q, threshold: float | None, tolerance: float | None
    ) -> CPNNQuery:
        """Normalise a bare point or prepared query plus overrides."""
        if isinstance(q, QuerySpec) and not isinstance(q, CPNNQuery):
            raise TypeError(
                f"{type(q).__name__} specs go through execute(), not query()"
            )
        if isinstance(q, CPNNQuery):
            if threshold is None and tolerance is None:
                return q
            return CPNNQuery(
                q.q,
                threshold if threshold is not None else q.threshold,
                tolerance if tolerance is not None else q.tolerance,
            )
        return CPNNQuery(
            q,
            threshold if threshold is not None else 0.3,
            tolerance if tolerance is not None else 0.01,
        )

    def _as_strategy(self, strategy: str | None) -> str:
        strategy = strategy or self._config.strategy
        if strategy not in Strategy.ALL:
            raise ValueError(f"unknown strategy {strategy!r}")
        return strategy

    def _chain_for(self, spec_type: type) -> VerifierChain:
        """The verifier chain serving ``spec_type`` (pipeline hook)."""
        chain = self._chains.get(spec_type)
        if chain is None:
            custom = (
                self._config.pipeline(spec_type)
                if self._config.pipeline is not None
                else None
            )
            if custom is not None and not isinstance(custom, VerifierChain):
                raise TypeError(
                    "EngineConfig.pipeline must return a VerifierChain or None, "
                    f"got {type(custom).__name__}"
                )
            chain = custom if custom is not None else self._chain
            self._chains[spec_type] = chain
        return chain

    def _ensure_batch_filter(self) -> BatchMbrFilter:
        """The vectorised MBR filter, built lazily on first use.

        Once built it is maintained incrementally by
        :meth:`insert`/:meth:`remove` (append / mask a coordinate row)
        rather than rebuilt from the object tuple.
        """
        if self._batch_filter is None:
            self._batch_filter = BatchMbrFilter(self._objects)
        return self._batch_filter

    def _filter_batch(self, points: Sequence) -> list[FilterResult]:
        """Filter every point, in one vectorised pass when possible.

        R-tree engines filter over object MBRs, which is exactly what
        the tree's branch-and-bound computes, so the whole batch runs
        as one matrix sweep.  Linear-scan engines use per-object
        ``mindist``/``maxdist`` (which may be tighter than the MBR for
        2-D regions), so they keep the reference scan per point.
        """
        if isinstance(self._filter, PnnFilter):
            points = [p.q if isinstance(p, QuerySpec) else p for p in points]
            return self._ensure_batch_filter()(points)
        return [
            self._filter(p.q if isinstance(p, QuerySpec) else p) for p in points
        ]

    # ------------------------------------------------------------------
    # C-PNN evaluation (single + batch)
    # ------------------------------------------------------------------

    def _execute_pnn(self, query: CPNNQuery, strategy: str) -> QueryResult:
        prepared = self._prepare(query)
        if strategy == Strategy.BASIC:
            return self._run_basic(prepared, query)
        if strategy == Strategy.REFINE:
            return self._run_refine(prepared, query)
        return self._run_vr(prepared, query)

    def _pnn_batch(
        self, queries: list[CPNNQuery], strategy: str | None
    ) -> BatchResult:
        """One amortised pass over many C-PNN queries.

        The phases are restructured around the batch (see
        :mod:`repro.core.batch`): filtering is a single vectorised MBR
        sweep, distance distributions go through the engine's LRU
        cache, and the VR verifier chain runs as flat sweeps over the
        whole candidate×query matrix.  Per-candidate arithmetic is
        shared with the single-query path, so answers agree exactly.

        Repeated probes short-circuit in two tiers (DESIGN.md §11):
        a memoised *result* snapshot replays the whole pipeline's
        outcome for an undisturbed (point, strategy, constraints)
        triple, and a cached *table* skips filtering/initialisation
        when only the constraints changed.  Both tiers are exact —
        entries survive dynamic updates only while their candidate set
        provably cannot have changed.
        """
        strategy = self._as_strategy(strategy)
        batch = BatchResult()
        if not queries:
            return batch
        cache = self._distribution_cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        timings = batch.timings

        tick = time.perf_counter()
        self._flush_table_invalidations()
        table_cache = self._table_cache
        all_queries = queries
        slots: list[QueryResult | None] = [None] * len(all_queries)
        entries: dict[int, CachedTable] = {}
        live: list[int] = []
        if table_cache is not None:
            for b, query in enumerate(all_queries):
                entry = table_cache.get(point_key(query.q))
                if entry is not None:
                    entries[b] = entry
                    snapshot = entry.results.get(_result_sig(query, strategy))
                    if snapshot is not None:
                        slots[b] = _replay_result(snapshot)
                        batch.table_hits += 1
                        batch.result_hits += 1
                        continue
                live.append(b)
        else:
            live = list(range(len(all_queries)))
        queries = [all_queries[b] for b in live]
        filter_results = (
            self._filter_batch([q.q for q in queries]) if queries else []
        )
        timings.filtering = time.perf_counter() - tick
        if not queries:
            # Every spec replayed a memoised snapshot; nothing to run.
            batch.results = slots
            for result, query in zip(slots, all_queries):
                result.spec = query
            return batch

        tick = time.perf_counter()
        tables = []
        distributions_built = 0
        built_this_batch: dict[Hashable, CachedTable] = {}
        for b, query, fr in zip(live, queries, filter_results):
            key = point_key(query.q)
            entry = entries.get(b)
            if entry is None:
                # A duplicate point earlier in this batch may have just
                # built this table; a plain dict probe avoids counting
                # a second miss against the cache for the same point.
                entry = built_this_batch.get(key)
                if entry is not None:
                    entries[b] = entry
            if entry is not None:
                table = entry.table
                batch.table_hits += 1
            else:
                table = SubregionTable(
                    distributions_for(fr.candidates, query.q, cache),
                    grid_refinement=self._config.grid_refinement,
                )
                distributions_built += table.size
                batch.table_misses += 1
                if table_cache is not None:
                    entry = CachedTable(table=table, fmin=fr.fmin)
                    table_cache.put(key, entry)
                    entries[b] = entry
                    built_this_batch[key] = entry
            tables.append(table)
        offsets = np.zeros(len(tables) + 1, dtype=np.intp)
        np.cumsum([table.size for table in tables], out=offsets[1:])
        total = int(offsets[-1])
        pad = self._config.bound_pad
        flat_lower = np.zeros(total)
        flat_upper = np.ones(total)
        flat_labels = np.zeros(total, dtype=np.int8)
        flat_states = CandidateStates.from_arrays(
            [key for table in tables for key in table.keys],
            flat_lower,
            flat_upper,
            flat_labels,
            pad=pad,
        )
        prepared = []
        for b, (table, fr) in enumerate(zip(tables, filter_results)):
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            states = CandidateStates.from_arrays(
                table.keys,
                flat_lower[lo:hi],
                flat_upper[lo:hi],
                flat_labels[lo:hi],
                pad=pad,
            )
            refiner = Refiner(
                table,
                quadrature_margin=self._config.quadrature_margin,
                order=self._config.refinement_order,
            )
            prepared.append(_Prepared(fr, table, states, refiner))
        timings.initialization = time.perf_counter() - tick

        if strategy == Strategy.VR:
            # The flat sweep classifies the whole batch against one
            # threshold/tolerance pair and one verifier chain.  Specs
            # with heterogeneous constraints — or different PNN-family
            # spec types, whose chains may differ through the pipeline
            # hook — keep working through the sequential chain, query
            # by query, so batch == loop holds per spec.
            uniform = all(
                q.threshold == queries[0].threshold
                and q.tolerance == queries[0].tolerance
                and type(q) is type(queries[0])
                for q in queries[1:]
            )
            tick = time.perf_counter()
            if uniform:
                outcomes = self._chain_for(type(queries[0])).run_batch(
                    tables,
                    flat_states,
                    offsets,
                    queries[0].threshold,
                    queries[0].tolerance,
                )
            else:
                outcomes = [
                    self._chain_for(type(query)).run(table, prep.states, query)
                    for table, prep, query in zip(tables, prepared, queries)
                ]
            timings.verification = time.perf_counter() - tick

            tick = time.perf_counter()
            for b, prep, query, outcome in zip(live, prepared, queries, outcomes):
                states = prep.states
                finished = states.n_unknown == 0
                survivors = states.unknown_indices()
                prep.refiner.refine_objects(
                    survivors, states, query, use_verifier_slices=True
                )
                refined = int(survivors.size)
                slots[b] = self._assemble(
                    prep,
                    query,
                    unknown_after=outcome.unknown_after,
                    finished_after_verification=finished,
                    refined=refined,
                )
            timings.refinement = time.perf_counter() - tick
        else:
            runner = (
                self._run_basic if strategy == Strategy.BASIC else self._run_refine
            )
            for b, prep, query in zip(live, prepared, queries):
                slots[b] = runner(prep, query)
            timings.refinement = sum(
                slots[b].timings.refinement for b in live
            )

        # Memoise freshly computed outcomes as pristine snapshots so a
        # repeated probe of an undisturbed point replays them wholesale.
        for b, query in zip(live, queries):
            entry = entries.get(b)
            if entry is not None:
                entry.results[_result_sig(query, strategy)] = _replay_result(
                    slots[b]
                )
        batch.results = slots
        for result, query in zip(batch.results, all_queries):
            result.spec = query
        if cache is not None:
            batch.cache_hits = cache.hits - hits_before
            batch.cache_misses = cache.misses - misses_before
        else:
            batch.cache_misses = distributions_built
        return batch

    # ------------------------------------------------------------------
    # Routed k-NN / range evaluation (single + batch share these)
    # ------------------------------------------------------------------

    def _knn_group(
        self, specs: list[CKNNQuery]
    ) -> tuple[list[QueryResult], float]:
        """Evaluate k-NN specs through the shared substrate.

        One vectorised ``f_min^k`` MBR sweep filters every spec's
        point; survivors' distance distributions go through the LRU
        cache and the columnar bound/integration kernels
        (:func:`~repro.core.knn.knn_routed_eval`).  Returns the results
        (answers bit-identical to the scalar
        :meth:`~repro.core.knn.CKNNEngine.query` path) and the shared
        filtering seconds.
        """
        n = len(self._objects)
        keys = [obj.key for obj in self._objects]
        cache = self._distribution_cache
        ks = [min(spec.k, n) for spec in specs]
        nontrivial = [i for i, spec in enumerate(specs) if spec.k < n]
        filter_seconds = 0.0
        filtered: dict[int, tuple[np.ndarray, float]] = {}
        if nontrivial:
            tick = time.perf_counter()
            swept = self._ensure_batch_filter().kth_filter(
                [specs[i].q for i in nontrivial], [ks[i] for i in nontrivial]
            )
            filter_seconds = time.perf_counter() - tick
            filtered = dict(zip(nontrivial, swept))
        results = []
        for b, (spec, k) in enumerate(zip(specs, ks)):
            timings = PhaseTimings()
            if spec.k >= n:
                # Every object is trivially among the k nearest — the
                # scalar path's early return, replicated before any
                # distribution is built.
                records = [
                    AnswerRecord(
                        key=key, label=Label.SATISFY, lower=1.0, upper=1.0, exact=1.0
                    )
                    for key in keys
                ]
                results.append(
                    QueryResult(
                        answers=tuple(keys),
                        records=records,
                        fmin=float("inf"),
                        timings=timings,
                        finished_after_verification=True,
                        spec=spec,
                    )
                )
                continue
            survivors, fmin_k = filtered[b]
            hits_before = cache.hits if cache is not None else 0
            misses_before = cache.misses if cache is not None else 0
            tick = time.perf_counter()
            candidates = [self._objects[i] for i in survivors]
            distributions = distributions_for(candidates, spec.q, cache)
            timings.initialization = time.perf_counter() - tick
            tick = time.perf_counter()
            answers, records, n_exact, exact_seconds = knn_routed_eval(
                distributions,
                survivors,
                keys,
                k,
                spec.threshold,
                n,
                quadrature_margin=self._config.quadrature_margin,
            )
            timings.verification = time.perf_counter() - tick - exact_seconds
            timings.refinement = exact_seconds
            results.append(
                QueryResult(
                    answers=answers,
                    records=records,
                    fmin=fmin_k,
                    timings=timings,
                    finished_after_verification=n_exact == 0,
                    refined_objects=n_exact,
                    spec=spec,
                    cache_hits=(cache.hits - hits_before) if cache is not None else 0,
                    cache_misses=(cache.misses - misses_before)
                    if cache is not None
                    else len(distributions),
                )
            )
        return results, filter_seconds

    def _range_group(
        self, specs: list[CRangeQuery]
    ) -> tuple[list[QueryResult], float]:
        """Evaluate range specs through the shared substrate.

        One vectorised MBR distance sweep classifies every (spec,
        object) pair; only straddling objects re-check exact region
        distances, and only true straddlers build distributions (LRU
        cache) and evaluate ``cdf(radius)`` through the columnar kernel
        (:func:`~repro.core.range_query.range_routed_eval`).  Answers
        are bit-identical to the scalar
        :func:`~repro.core.range_query.constrained_range_query`.
        """
        cache = self._distribution_cache
        tick = time.perf_counter()
        mindist, maxdist = self._ensure_batch_filter().matrices(
            [spec.q for spec in specs]
        )
        filter_seconds = time.perf_counter() - tick
        results = []
        for b, spec in enumerate(specs):
            timings = PhaseTimings()
            hits_before = cache.hits if cache is not None else 0
            misses_before = cache.misses if cache is not None else 0
            tick = time.perf_counter()
            built: list[int] = []
            build_seconds = [0.0]

            def provider(objs, _q=spec.q, _built=built, _secs=build_seconds):
                inner = time.perf_counter()
                distributions = distributions_for(objs, _q, cache)
                _secs[0] += time.perf_counter() - inner
                _built.append(len(objs))
                return distributions

            answers, records, n_evaluated = range_routed_eval(
                self._objects,
                spec.q,
                spec.radius,
                spec.threshold,
                mindist[b],
                maxdist[b],
                provider,
            )
            elapsed = time.perf_counter() - tick
            timings.initialization = build_seconds[0]
            timings.verification = elapsed - build_seconds[0]
            results.append(
                QueryResult(
                    answers=answers,
                    records=records,
                    fmin=float(spec.radius),
                    timings=timings,
                    finished_after_verification=n_evaluated == 0,
                    refined_objects=n_evaluated,
                    spec=spec,
                    cache_hits=(cache.hits - hits_before) if cache is not None else 0,
                    cache_misses=(cache.misses - misses_before)
                    if cache is not None
                    else sum(built),
                )
            )
        return results, filter_seconds

    # ------------------------------------------------------------------
    # C-PNN phases
    # ------------------------------------------------------------------

    def _prepare(self, query: CPNNQuery) -> _Prepared:
        timings = PhaseTimings()
        tick = time.perf_counter()
        filter_result = self._single_filter()(query.q)
        timings.filtering = time.perf_counter() - tick

        tick = time.perf_counter()
        distributions = [
            obj.distance_distribution(query.q) for obj in filter_result.candidates
        ]
        table = SubregionTable(
            distributions, grid_refinement=self._config.grid_refinement
        )
        states = CandidateStates(table.keys, pad=self._config.bound_pad)
        refiner = Refiner(
            table,
            quadrature_margin=self._config.quadrature_margin,
            order=self._config.refinement_order,
        )
        timings.initialization = time.perf_counter() - tick
        return _Prepared(filter_result, table, states, refiner, timings)

    def _run_basic(self, prepared: _Prepared, query: CPNNQuery) -> QueryResult:
        timings = prepared.timings
        tick = time.perf_counter()
        probabilities = prepared.refiner.exact_all()
        states = prepared.states
        for i, p in enumerate(probabilities):
            states.set_exact(i, float(p))
            states.labels[i] = _SATISFY if p >= query.threshold else _FAIL
        timings.refinement = time.perf_counter() - tick
        return self._assemble(
            prepared,
            query,
            unknown_after={},
            finished_after_verification=False,
            refined=prepared.table.size,
            exact=probabilities,
        )

    def _run_refine(self, prepared: _Prepared, query: CPNNQuery) -> QueryResult:
        timings = prepared.timings
        states = prepared.states
        tick = time.perf_counter()
        refined = 0
        for i in range(prepared.table.size):
            if states.labels[i] == _UNKNOWN:
                prepared.refiner.refine_object(
                    i, states, query, use_verifier_slices=False
                )
                refined += 1
        timings.refinement = time.perf_counter() - tick
        return self._assemble(
            prepared,
            query,
            unknown_after={},
            finished_after_verification=False,
            refined=refined,
        )

    def _run_vr(self, prepared: _Prepared, query: CPNNQuery) -> QueryResult:
        timings = prepared.timings
        states = prepared.states
        chain = self._chain_for(type(query))

        tick = time.perf_counter()
        outcome = chain.run(prepared.table, states, query)
        timings.verification = time.perf_counter() - tick

        finished = states.n_unknown == 0
        tick = time.perf_counter()
        refined = 0
        for i in states.unknown_indices():
            prepared.refiner.refine_object(
                int(i), states, query, use_verifier_slices=True
            )
            refined += 1
        timings.refinement = time.perf_counter() - tick
        return self._assemble(
            prepared,
            query,
            unknown_after=outcome.unknown_after,
            finished_after_verification=finished,
            refined=refined,
        )

    # ------------------------------------------------------------------

    def _assemble(
        self,
        prepared: _Prepared,
        query: CPNNQuery,
        unknown_after: dict[str, float],
        finished_after_verification: bool,
        refined: int,
        exact: np.ndarray | None = None,
    ) -> QueryResult:
        states = prepared.states
        table = prepared.table
        records = []
        answers = []
        for i, key in enumerate(table.keys):
            label = _CODE_TO_LABEL[int(states.labels[i])]
            exact_p = float(exact[i]) if exact is not None else None
            if exact_p is None and states.upper[i] - states.lower[i] <= 3 * states.pad:
                exact_p = 0.5 * (states.upper[i] + states.lower[i])
            records.append(
                AnswerRecord(
                    key=key,
                    label=label,
                    lower=float(states.lower[i]),
                    upper=float(states.upper[i]),
                    exact=exact_p,
                )
            )
            if label is Label.SATISFY:
                answers.append(key)
        return QueryResult(
            answers=tuple(answers),
            records=records,
            fmin=prepared.filter_result.fmin,
            timings=prepared.timings,
            unknown_after_verifier=dict(unknown_after),
            finished_after_verification=finished_after_verification,
            refined_objects=refined,
        )


class CPNNEngine(UncertainEngine):
    """Legacy name of :class:`UncertainEngine`, kept as a thin shim.

    Identical in every respect except that construction requires a
    non-empty object sequence (the pre-façade contract; an
    :class:`UncertainEngine` may start empty and answers ``execute``
    specs with empty results).  New code should construct
    :class:`UncertainEngine` directly.
    """

    def __init__(self, objects: Sequence, config: EngineConfig | None = None):
        if not objects:
            raise ValueError("engine requires at least one object")
        super().__init__(objects, config)
