"""The C-PNN query engine: filtering → verification → refinement.

Implements the three evaluation strategies compared in Section V:

* **Basic** — exact qualification probabilities for every candidate
  (numerical integration per [5]); answers are ``{i : p_i ≥ P}``.
* **Refine** — skip verification, run *incremental refinement*
  directly (per-subregion exact integration with early classification).
* **VR** — the paper's proposal: the verifier chain (RS → L-SR →
  U-SR) settles most candidates algebraically; survivors fall through
  to incremental refinement seeded with the verifier's per-subregion
  bounds.

All strategies share the same filtering phase and produce identical
answer sets when the tolerance is 0 (a property-based test); with a
positive tolerance VR/Refine may legitimately return extra objects
whose probability lies within Δ below the threshold (Definition 1).

Per-phase wall-clock timings are recorded to reproduce Figures 9–11
and 14.  The four phases (filtering, initialisation, verification,
refinement) are disjoint; the paper's three-phase accounting charges
initialisation (distance pdfs/cdfs + the subregion table) to
verification, which the Figure 11 driver reconstructs by summing the
two fields.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.core.batch import (
    BatchResult,
    DistributionCache,
    LruCache,
    distributions_for,
    point_key,
)
from repro.core.bounds import DEFAULT_BOUND_PAD
from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import AnswerRecord, CPNNQuery, CPNNResult, Label, PhaseTimings
from repro.core.verifiers.chain import VerifierChain, default_chain
from repro.index.filtering import (
    BatchMbrFilter,
    FilterResult,
    PnnFilter,
    filter_candidates,
)
from repro.index.str_pack import str_bulk_load

__all__ = ["CPNNEngine", "EngineConfig", "Strategy"]

_UNKNOWN, _SATISFY, _FAIL = 0, 1, 2

_CODE_TO_LABEL = {_UNKNOWN: Label.UNKNOWN, _SATISFY: Label.SATISFY, _FAIL: Label.FAIL}


class Strategy:
    """String constants naming the three evaluation strategies."""

    BASIC = "basic"
    REFINE = "refine"
    VR = "vr"

    ALL = (BASIC, REFINE, VR)


@dataclass
class EngineConfig:
    """Tuning knobs for :class:`CPNNEngine`.

    Attributes
    ----------
    strategy:
        One of :class:`Strategy`'s constants; default is the paper's
        proposed VR.
    chain_factory:
        Builds the verifier chain used by VR (default: RS → L-SR →
        U-SR, Figure 5's order).  The engine calls it once at
        construction and reuses the chain across queries — verifiers
        are stateless, so per-query rebuilding would only add
        allocation overhead to the hot path.
    bound_pad:
        Floating-point guard added around computed bounds
        (DESIGN.md §5).
    refinement_order:
        ``'widest'`` integrates the subregion with the widest remaining
        bound gap first (fastest classification); ``'left'`` follows
        ascending distance.
    quadrature_margin:
        Extra Gauss–Legendre nodes beyond the exactness requirement.
    use_rtree:
        Filter through a bulk-loaded R-tree (True, the paper's setup)
        or a linear scan (False, for baselining the index itself).
    rtree_max_entries:
        Node capacity of the bulk-loaded R-tree.
    grid_refinement:
        Split every inner subregion into this many parts before
        verification: tighter verifier bounds at proportionally higher
        verification cost (an extension beyond the paper; see the
        grid-refinement ablation bench).
    distribution_cache_size:
        Capacity of the LRU cache of distance distributions used by
        :meth:`CPNNEngine.query_batch` (entries are keyed by
        ``(object, query point)``, so repeated probes skip the
        histogram fold).  0 disables the cache.
    table_cache_size:
        Capacity (in query points) of the LRU cache of fully built
        subregion tables used by :meth:`CPNNEngine.query_batch`.  A
        repeated probe skips filtering *and* initialisation for that
        point.  Invalidated whenever the object set changes.  0
        disables the cache.  Note the bound is entry-count, not bytes:
        each table pins its distributions plus O(|C|·M) matrices, so
        size this to the working set of hot probe points, not higher.
    """

    strategy: str = Strategy.VR
    chain_factory: Callable[[], VerifierChain] = default_chain
    bound_pad: float = DEFAULT_BOUND_PAD
    refinement_order: str = "widest"
    quadrature_margin: int = 1
    use_rtree: bool = True
    rtree_max_entries: int = 16
    grid_refinement: int = 1
    distribution_cache_size: int = 65536
    table_cache_size: int = 256

    def __post_init__(self) -> None:
        if self.strategy not in Strategy.ALL:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.refinement_order not in ("widest", "left"):
            raise ValueError("refinement_order must be 'widest' or 'left'")
        if self.grid_refinement < 1:
            raise ValueError("grid_refinement must be >= 1")
        if self.distribution_cache_size < 0:
            raise ValueError("distribution_cache_size must be >= 0")
        if self.table_cache_size < 0:
            raise ValueError("table_cache_size must be >= 0")


@dataclass
class _Prepared:
    """Everything shared by the post-filter phases of one query."""

    filter_result: FilterResult
    table: SubregionTable
    states: CandidateStates
    refiner: Refiner
    timings: PhaseTimings = field(default_factory=PhaseTimings)


class CPNNEngine:
    """Evaluates C-PNN (and exact PNN) queries over uncertain objects.

    Parameters
    ----------
    objects:
        Any sequence of objects satisfying the
        :class:`~repro.uncertainty.objects.SpatialUncertain` protocol
        (1-D intervals, 2-D disks/segments/rectangles, or a mixture of
        same-dimension objects).
    config:
        Optional :class:`EngineConfig`.
    """

    def __init__(self, objects: Sequence, config: EngineConfig | None = None):
        if not objects:
            raise ValueError("engine requires at least one object")
        self._objects = tuple(objects)
        dims = {obj.mbr.dim for obj in self._objects}
        if len(dims) > 1:
            raise ValueError(
                f"all objects must share one dimensionality, got {sorted(dims)}"
            )
        self._config = config or EngineConfig()
        #: The verifier chain, built once and reused by every VR query
        #: (verifiers are stateless; see EngineConfig.chain_factory).
        self._chain = self._config.chain_factory()
        if self._config.use_rtree:
            tree = str_bulk_load(
                [(obj.mbr, obj) for obj in self._objects],
                max_entries=self._config.rtree_max_entries,
            )
            self._filter = PnnFilter(tree)
        else:
            self._filter = lambda q: filter_candidates(self._objects, q)
        #: Vectorised whole-batch filter for query_batch.  Built with
        #: the rest of the index substrate for R-tree engines (it
        #: filters over the same MBRs the tree holds) and rebuilt
        #: lazily after dynamic updates.
        self._batch_filter: BatchMbrFilter | None = (
            BatchMbrFilter(self._objects) if self._config.use_rtree else None
        )
        self._distribution_cache: DistributionCache | None = (
            DistributionCache(self._config.distribution_cache_size)
            if self._config.distribution_cache_size
            else None
        )
        #: LRU of fully built subregion tables keyed by query point.
        self._table_cache: LruCache | None = (
            LruCache(self._config.table_cache_size)
            if self._config.table_cache_size
            else None
        )

    # ------------------------------------------------------------------

    @property
    def objects(self) -> tuple:
        return self._objects

    @property
    def config(self) -> EngineConfig:
        return self._config

    def __len__(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Dynamic updates (the R-tree substrate supports insert/delete, so
    # the engine does too — no rebuild needed)
    # ------------------------------------------------------------------

    def insert(self, obj) -> None:
        """Add an uncertain object; later queries see it immediately."""
        if self._objects and obj.mbr.dim != self._objects[0].mbr.dim:
            raise ValueError("object dimensionality mismatch")
        self._objects = self._objects + (obj,)
        self._invalidate_batch_state()
        if isinstance(self._filter, PnnFilter):
            self._filter.tree.insert(obj.mbr, obj)

    def remove(self, key: Hashable) -> bool:
        """Remove the object with identifier ``key``; True if found.

        The engine may become empty, in which case queries raise until
        an object is inserted again.
        """
        victim = None
        for obj in self._objects:
            if obj.key == key:
                victim = obj
                break
        if victim is None:
            return False
        self._objects = tuple(o for o in self._objects if o is not victim)
        self._invalidate_batch_state(victim)
        if isinstance(self._filter, PnnFilter):
            removed = self._filter.tree.delete(
                victim.mbr, lambda item: item is victim
            )
            if not removed:
                raise RuntimeError(
                    "index out of sync with object list: "
                    f"object {victim.key!r} was tracked but not indexed"
                )
        return True

    def _invalidate_batch_state(self, removed=None) -> None:
        """Drop batch caches that depend on the object set.

        The whole-batch filter and the per-point table cache reflect
        the full object set, so any update invalidates them.  Cached
        distance distributions stay valid (each is a pure function of
        one object and one point); only a removed object's entries are
        evicted, to release its memory.
        """
        self._batch_filter = None
        if self._table_cache is not None:
            self._table_cache.clear()
        if removed is not None and self._distribution_cache is not None:
            self._distribution_cache.evict_object(removed)

    # ------------------------------------------------------------------
    # Public query API
    # ------------------------------------------------------------------

    def query(
        self,
        q,
        threshold: float | None = None,
        tolerance: float | None = None,
        strategy: str | None = None,
    ) -> CPNNResult:
        """Answer a C-PNN query.

        ``q`` may be a bare query point or a prepared
        :class:`~repro.core.types.CPNNQuery`; ``threshold``/
        ``tolerance`` override the query's values when given.
        """
        query = self._as_query(q, threshold, tolerance)
        strategy = self._as_strategy(strategy)

        prepared = self._prepare(query)
        if strategy == Strategy.BASIC:
            return self._run_basic(prepared, query)
        if strategy == Strategy.REFINE:
            return self._run_refine(prepared, query)
        return self._run_vr(prepared, query)

    def query_batch(
        self,
        points: Sequence,
        threshold: float | None = None,
        tolerance: float | None = None,
        strategy: str | None = None,
    ) -> BatchResult:
        """Answer one C-PNN query per point, amortising work batch-wide.

        Semantically equivalent to calling :meth:`query` once per point
        with the same ``threshold``/``tolerance``/``strategy`` — the
        per-candidate arithmetic is shared with the sequential path, so
        answers agree exactly — but the phases are restructured around
        the batch (see :mod:`repro.core.batch`): filtering is a single
        vectorised MBR sweep, distance distributions go through the
        engine's LRU cache, and the VR verifier chain runs as flat
        sweeps over the whole candidate×query matrix.

        Returns a :class:`~repro.core.batch.BatchResult` whose
        ``results`` align with ``points``; batch-level phase timings
        and distribution-cache traffic ride along.  An empty ``points``
        sequence yields an empty result.
        """
        strategy = self._as_strategy(strategy)
        points = list(points)
        batch = BatchResult()
        if not points:
            return batch
        queries = [self._as_query(p, threshold, tolerance) for p in points]
        cache = self._distribution_cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        timings = batch.timings

        tick = time.perf_counter()
        filter_results = self._filter_batch(points)
        timings.filtering = time.perf_counter() - tick

        tick = time.perf_counter()
        tables = []
        table_cache = self._table_cache
        distributions_built = 0
        for query, fr in zip(queries, filter_results):
            key = point_key(query.q)
            table = table_cache.get(key) if table_cache is not None else None
            if table is not None:
                batch.table_hits += 1
            else:
                table = SubregionTable(
                    distributions_for(fr.candidates, query.q, cache),
                    grid_refinement=self._config.grid_refinement,
                )
                distributions_built += table.size
                batch.table_misses += 1
                if table_cache is not None:
                    table_cache.put(key, table)
            tables.append(table)
        offsets = np.zeros(len(tables) + 1, dtype=np.intp)
        np.cumsum([table.size for table in tables], out=offsets[1:])
        total = int(offsets[-1])
        pad = self._config.bound_pad
        flat_lower = np.zeros(total)
        flat_upper = np.ones(total)
        flat_labels = np.zeros(total, dtype=np.int8)
        flat_states = CandidateStates.from_arrays(
            [key for table in tables for key in table.keys],
            flat_lower,
            flat_upper,
            flat_labels,
            pad=pad,
        )
        prepared = []
        for b, (table, fr) in enumerate(zip(tables, filter_results)):
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            states = CandidateStates.from_arrays(
                table.keys,
                flat_lower[lo:hi],
                flat_upper[lo:hi],
                flat_labels[lo:hi],
                pad=pad,
            )
            refiner = Refiner(
                table,
                quadrature_margin=self._config.quadrature_margin,
                order=self._config.refinement_order,
            )
            prepared.append(_Prepared(fr, table, states, refiner))
        timings.initialization = time.perf_counter() - tick

        if strategy == Strategy.VR:
            # The flat sweep classifies the whole batch against one
            # threshold/tolerance pair.  Prepared CPNNQuery points with
            # heterogeneous constraints keep working through the
            # sequential chain, query by query.
            uniform = all(
                q.threshold == queries[0].threshold
                and q.tolerance == queries[0].tolerance
                for q in queries[1:]
            )
            chain = self._chain
            tick = time.perf_counter()
            if uniform:
                outcomes = chain.run_batch(
                    tables,
                    flat_states,
                    offsets,
                    queries[0].threshold,
                    queries[0].tolerance,
                )
            else:
                outcomes = [
                    chain.run(table, prep.states, query)
                    for table, prep, query in zip(tables, prepared, queries)
                ]
            timings.verification = time.perf_counter() - tick

            tick = time.perf_counter()
            for prep, query, outcome in zip(prepared, queries, outcomes):
                states = prep.states
                finished = states.n_unknown == 0
                survivors = states.unknown_indices()
                prep.refiner.refine_objects(
                    survivors, states, query, use_verifier_slices=True
                )
                refined = int(survivors.size)
                batch.results.append(
                    self._assemble(
                        prep,
                        query,
                        unknown_after=outcome.unknown_after,
                        finished_after_verification=finished,
                        refined=refined,
                    )
                )
            timings.refinement = time.perf_counter() - tick
        else:
            runner = (
                self._run_basic if strategy == Strategy.BASIC else self._run_refine
            )
            for prep, query in zip(prepared, queries):
                batch.results.append(runner(prep, query))
            timings.refinement = sum(
                result.timings.refinement for result in batch.results
            )

        if cache is not None:
            batch.cache_hits = cache.hits - hits_before
            batch.cache_misses = cache.misses - misses_before
        else:
            batch.cache_misses = distributions_built
        return batch

    def pnn(self, q) -> dict[Hashable, float]:
        """Exact PNN: qualification probability of every candidate.

        Objects pruned by filtering have probability 0 and are omitted,
        matching the paper's PNN semantics of returning only non-zero
        probabilities.
        """
        query = CPNNQuery(q, threshold=1.0, tolerance=0.0)
        prepared = self._prepare(query)
        probabilities = prepared.refiner.exact_all()
        return {
            key: float(p)
            for key, p in zip(prepared.table.keys, probabilities)
        }

    # ------------------------------------------------------------------
    # Query normalisation and batch filtering
    # ------------------------------------------------------------------

    @staticmethod
    def _as_query(
        q, threshold: float | None, tolerance: float | None
    ) -> CPNNQuery:
        """Normalise a bare point or prepared query plus overrides."""
        if isinstance(q, CPNNQuery):
            if threshold is None and tolerance is None:
                return q
            return CPNNQuery(
                q.q,
                threshold if threshold is not None else q.threshold,
                tolerance if tolerance is not None else q.tolerance,
            )
        return CPNNQuery(
            q,
            threshold if threshold is not None else 0.3,
            tolerance if tolerance is not None else 0.01,
        )

    def _as_strategy(self, strategy: str | None) -> str:
        strategy = strategy or self._config.strategy
        if strategy not in Strategy.ALL:
            raise ValueError(f"unknown strategy {strategy!r}")
        return strategy

    def _filter_batch(self, points: Sequence) -> list[FilterResult]:
        """Filter every point, in one vectorised pass when possible.

        R-tree engines filter over object MBRs, which is exactly what
        the tree's branch-and-bound computes, so the whole batch runs
        as one matrix sweep.  Linear-scan engines use per-object
        ``mindist``/``maxdist`` (which may be tighter than the MBR for
        2-D regions), so they keep the reference scan per point.
        """
        if isinstance(self._filter, PnnFilter):
            if self._batch_filter is None:
                self._batch_filter = BatchMbrFilter(self._objects)
            points = [p.q if isinstance(p, CPNNQuery) else p for p in points]
            return self._batch_filter(points)
        return [
            self._filter(p.q if isinstance(p, CPNNQuery) else p) for p in points
        ]

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _prepare(self, query: CPNNQuery) -> _Prepared:
        timings = PhaseTimings()
        tick = time.perf_counter()
        filter_result = self._filter(query.q)
        timings.filtering = time.perf_counter() - tick

        tick = time.perf_counter()
        distributions = [
            obj.distance_distribution(query.q) for obj in filter_result.candidates
        ]
        table = SubregionTable(
            distributions, grid_refinement=self._config.grid_refinement
        )
        states = CandidateStates(table.keys, pad=self._config.bound_pad)
        refiner = Refiner(
            table,
            quadrature_margin=self._config.quadrature_margin,
            order=self._config.refinement_order,
        )
        timings.initialization = time.perf_counter() - tick
        return _Prepared(filter_result, table, states, refiner, timings)

    def _run_basic(self, prepared: _Prepared, query: CPNNQuery) -> CPNNResult:
        timings = prepared.timings
        tick = time.perf_counter()
        probabilities = prepared.refiner.exact_all()
        states = prepared.states
        for i, p in enumerate(probabilities):
            states.set_exact(i, float(p))
            states.labels[i] = _SATISFY if p >= query.threshold else _FAIL
        timings.refinement = time.perf_counter() - tick
        return self._assemble(
            prepared,
            query,
            unknown_after={},
            finished_after_verification=False,
            refined=prepared.table.size,
            exact=probabilities,
        )

    def _run_refine(self, prepared: _Prepared, query: CPNNQuery) -> CPNNResult:
        timings = prepared.timings
        states = prepared.states
        tick = time.perf_counter()
        refined = 0
        for i in range(prepared.table.size):
            if states.labels[i] == _UNKNOWN:
                prepared.refiner.refine_object(
                    i, states, query, use_verifier_slices=False
                )
                refined += 1
        timings.refinement = time.perf_counter() - tick
        return self._assemble(
            prepared,
            query,
            unknown_after={},
            finished_after_verification=False,
            refined=refined,
        )

    def _run_vr(self, prepared: _Prepared, query: CPNNQuery) -> CPNNResult:
        timings = prepared.timings
        states = prepared.states
        chain = self._chain

        tick = time.perf_counter()
        outcome = chain.run(prepared.table, states, query)
        timings.verification = time.perf_counter() - tick

        finished = states.n_unknown == 0
        tick = time.perf_counter()
        refined = 0
        for i in states.unknown_indices():
            prepared.refiner.refine_object(
                int(i), states, query, use_verifier_slices=True
            )
            refined += 1
        timings.refinement = time.perf_counter() - tick
        return self._assemble(
            prepared,
            query,
            unknown_after=outcome.unknown_after,
            finished_after_verification=finished,
            refined=refined,
        )

    # ------------------------------------------------------------------

    def _assemble(
        self,
        prepared: _Prepared,
        query: CPNNQuery,
        unknown_after: dict[str, float],
        finished_after_verification: bool,
        refined: int,
        exact: np.ndarray | None = None,
    ) -> CPNNResult:
        states = prepared.states
        table = prepared.table
        records = []
        answers = []
        for i, key in enumerate(table.keys):
            label = _CODE_TO_LABEL[int(states.labels[i])]
            exact_p = float(exact[i]) if exact is not None else None
            if exact_p is None and states.upper[i] - states.lower[i] <= 3 * states.pad:
                exact_p = 0.5 * (states.upper[i] + states.lower[i])
            records.append(
                AnswerRecord(
                    key=key,
                    label=label,
                    lower=float(states.lower[i]),
                    upper=float(states.upper[i]),
                    exact=exact_p,
                )
            )
            if label is Label.SATISFY:
                answers.append(key)
        return CPNNResult(
            answers=tuple(answers),
            records=records,
            fmin=prepared.filter_result.fmin,
            timings=prepared.timings,
            unknown_after_verifier=dict(unknown_after),
            finished_after_verification=finished_after_verification,
            refined_objects=refined,
        )
