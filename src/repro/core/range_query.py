"""Constrained probabilistic range queries.

The paper's related work (Section II) points at probabilistic *range*
queries ([16], Tao et al.) as the sibling problem to PNN.  On the
attribute-uncertainty model they are much easier than PNN because
objects do not interact: the probability that object ``i`` lies within
distance ``r`` of the query point is simply its distance cdf,

    Pr[|X_i − q| ≤ r] = D_i(r)

This module answers the *constrained* variant with the same
filter-then-verify philosophy as the C-PNN engine:

1. **MBR verification** (no pdf access): ``maxdist(q) ≤ r`` proves
   probability 1, ``mindist(q) > r`` proves probability 0;
2. **exact evaluation** of ``D_i(r)`` only for objects whose bounding
   box straddles the range.

With a threshold ``P`` and tolerance ``Δ`` the answer obeys the same
contract as the C-PNN: ``{i : D_i(r) ≥ P} ⊆ answer ⊆
{i : D_i(r) ≥ P − Δ}`` (with Δ only mattering for the MBR-decided
objects, whose bounds are 0/1 — so the answer is in fact exact).
"""

from __future__ import annotations

import warnings
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.core.types import AnswerRecord, Label
from repro.uncertainty.columnar import DistributionPack
from repro.uncertainty.parametric.base import ParametricDistance
from repro.uncertainty.parametric.pack import MixedDistributionPack

__all__ = ["constrained_range_query", "range_probabilities", "range_routed_eval"]


def range_probabilities(
    objects: Sequence, q, radius: float
) -> dict[Hashable, float]:
    """``Pr[|X_i − q| ≤ radius]`` for every object (exact)."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    results: dict[Hashable, float] = {}
    for obj in objects:
        if obj.maxdist(q) <= radius:
            results[obj.key] = 1.0
        elif obj.mindist(q) > radius:
            results[obj.key] = 0.0
        else:
            results[obj.key] = float(obj.distance_distribution(q).cdf(radius))
    return results


def constrained_range_query(
    objects: Sequence,
    q,
    radius: float,
    threshold: float,
    tolerance: float = 0.0,
) -> tuple[tuple, list[AnswerRecord]]:
    """Objects within ``radius`` of ``q`` with probability ≥ ``threshold``.

    Returns ``(answer keys, per-object records)``.  Objects decided by
    their bounding boxes never touch their pdfs; the records show
    which path decided each object (bound width 0 for MBR decisions
    and exact evaluations alike — range probabilities are cheap enough
    that no partial bounds are ever needed).
    """
    warnings.warn(
        "constrained_range_query is deprecated; use "
        "UncertainEngine.execute(CRangeQuery(q, radius=...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if not objects:
        raise ValueError("need at least one object")
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must lie in (0, 1]")
    if not 0.0 <= tolerance <= 1.0:
        raise ValueError("tolerance must lie in [0, 1]")
    answers = []
    records: list[AnswerRecord] = []
    for obj in objects:
        if obj.maxdist(q) <= radius:
            p, exact = 1.0, None
        elif obj.mindist(q) > radius:
            p, exact = 0.0, None
        else:
            p = float(obj.distance_distribution(q).cdf(radius))
            exact = p
        label = Label.SATISFY if p >= threshold else Label.FAIL
        records.append(
            AnswerRecord(key=obj.key, label=label, lower=p, upper=p, exact=exact)
        )
        if label is Label.SATISFY:
            answers.append(obj.key)
    return tuple(answers), records


def range_routed_eval(
    objects: Sequence,
    q,
    radius: float,
    threshold: float,
    mbr_mindist: np.ndarray,
    mbr_maxdist: np.ndarray,
    distribution_provider: Callable[[list], Sequence],
) -> tuple[tuple, list[AnswerRecord], int]:
    """Constrained range query over MBR-prefiltered objects.

    ``mbr_mindist`` / ``mbr_maxdist`` are one row of
    :meth:`repro.index.filtering.BatchMbrFilter.matrices` for ``q``.
    Objects certainly inside (MBR ``maxdist <= radius``) or certainly
    outside (MBR ``mindist > radius``) are decided without touching
    their pdfs; only MBR-straddling objects re-check their exact region
    distances (which 2-D regions may bound tighter than the MBR), and
    only true straddlers have their distance distributions built — via
    ``distribution_provider`` so the engine can route them through its
    LRU cache — and their cdfs evaluated in one
    :class:`~repro.uncertainty.columnar.DistributionPack` kernel call.

    Returns ``(answers, records, n_evaluated)`` — bit-identical to
    :func:`constrained_range_query` over the full object sequence: the
    per-object branch structure is the scalar path's, and the pack cdf
    kernel reproduces per-object ``cdf(radius)`` bit for bit.
    """
    sure_in = mbr_maxdist <= radius
    probability = np.where(sure_in, 1.0, 0.0)
    straddle = ~sure_in & (mbr_mindist <= radius)
    exact: dict[int, float] = {}
    pending: list[tuple[int, object]] = []
    for j in np.flatnonzero(straddle):
        j = int(j)
        obj = objects[j]
        if obj.maxdist(q) <= radius:
            probability[j] = 1.0
        elif obj.mindist(q) > radius:
            probability[j] = 0.0
        else:
            pending.append((j, obj))
    if pending:
        distributions = distribution_provider([obj for _, obj in pending])
        # The provider may hand back closed-form distance laws (the
        # range leg of the parametric fast path): the mixed pack
        # evaluates those rows analytically — the probability is the
        # exact model's, no histogram ever built — and is a drop-in
        # replacement for the all-histogram kernel otherwise.
        if any(isinstance(d, ParametricDistance) for d in distributions):
            pack = MixedDistributionPack(distributions)
        else:
            pack = DistributionPack(distributions)
        evaluated = np.asarray(pack.cdf_many(float(radius)), dtype=float)
        for (j, _), p in zip(pending, evaluated):
            probability[j] = p
            exact[j] = float(p)
    satisfies = probability >= threshold
    answers: list[Hashable] = []
    records: list[AnswerRecord] = []
    for j, obj in enumerate(objects):
        p = float(probability[j])
        label = Label.SATISFY if satisfies[j] else Label.FAIL
        records.append(
            AnswerRecord(
                key=obj.key, label=label, lower=p, upper=p, exact=exact.get(j)
            )
        )
        if label is Label.SATISFY:
            answers.append(obj.key)
    return tuple(answers), records, len(pending)
