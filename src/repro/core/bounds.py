"""Probability bounds ``[p_i.l, p_i.u]`` and their update rule.

The paper (Section III-B): "a verifier only adjusts the probability
bound of an unknown object if this new bound is smaller than the one
previously computed" — i.e. bounds only ever *tighten*, by
intersection.  This module implements that rule plus the floating-point
guard described in DESIGN.md: freshly computed bounds are widened by a
tiny pad so that verifier arithmetic rounding can never exclude the
true probability.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProbabilityBound", "DEFAULT_BOUND_PAD"]

#: Widening applied to freshly computed bounds to absorb fp rounding.
DEFAULT_BOUND_PAD = 1e-12


@dataclass(frozen=True)
class ProbabilityBound:
    """A closed sub-interval of [0, 1] containing a probability."""

    lower: float = 0.0
    upper: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.lower <= 1.0 or not 0.0 <= self.upper <= 1.0:
            raise ValueError("bounds must lie in [0, 1]")
        if self.lower > self.upper:
            raise ValueError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @classmethod
    def trivial(cls) -> "ProbabilityBound":
        """The vacuous bound [0, 1] candidates start with."""
        return cls(0.0, 1.0)

    @classmethod
    def padded(cls, lower: float, upper: float, pad: float = DEFAULT_BOUND_PAD):
        """Build a bound widened by ``pad`` on both sides and clamped."""
        return cls(
            min(max(lower - pad, 0.0), 1.0),
            max(min(upper + pad, 1.0), 0.0),
        )

    @classmethod
    def exact(cls, p: float, pad: float = DEFAULT_BOUND_PAD) -> "ProbabilityBound":
        """A (padded) point bound for an exactly computed probability."""
        return cls.padded(p, p, pad)

    @property
    def width(self) -> float:
        """The estimation error ``p_i.u − p_i.l``."""
        return self.upper - self.lower

    def contains(self, p: float, slack: float = 0.0) -> bool:
        return self.lower - slack <= p <= self.upper + slack

    def tighten(self, other: "ProbabilityBound") -> "ProbabilityBound":
        """Intersect with ``other``, never widening either side.

        If rounding makes the intersection empty by a hair the bound
        collapses to the crossing point; a materially empty
        intersection indicates a bug upstream and raises.
        """
        lower = max(self.lower, other.lower)
        upper = min(self.upper, other.upper)
        if lower > upper:
            if lower - upper > 1e-6:
                raise ValueError(
                    f"inconsistent bounds: [{self.lower}, {self.upper}] vs "
                    f"[{other.lower}, {other.upper}]"
                )
            midpoint = 0.5 * (lower + upper)
            lower = upper = midpoint
        return ProbabilityBound(lower, upper)

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.lower:.4f}, {self.upper:.4f}]"
