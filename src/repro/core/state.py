"""Mutable per-candidate verification state (bounds + labels).

During initialisation "all objects in the candidate set are labeled
unknown, and their probability bounds are set to [0, 1]" (Section
III-B).  Verifiers and refinement then tighten bounds — never widen
them — and the classifier relabels between stages.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.bounds import DEFAULT_BOUND_PAD
from repro.core.classifier import classify_arrays, label_from_code
from repro.core.types import Label

__all__ = ["CandidateStates"]

_UNKNOWN, _SATISFY, _FAIL = 0, 1, 2


class CandidateStates:
    """Parallel arrays of probability bounds and labels for candidates."""

    def __init__(self, keys: Sequence[Hashable], pad: float = DEFAULT_BOUND_PAD):
        self._keys = tuple(keys)
        n = len(self._keys)
        if n == 0:
            raise ValueError("candidate state requires at least one candidate")
        self.lower = np.zeros(n)
        self.upper = np.ones(n)
        self.labels = np.zeros(n, dtype=np.int8)
        self._pad = float(pad)

    @classmethod
    def from_arrays(
        cls,
        keys: Sequence[Hashable],
        lower: np.ndarray,
        upper: np.ndarray,
        labels: np.ndarray,
        pad: float = DEFAULT_BOUND_PAD,
    ) -> "CandidateStates":
        """Wrap externally owned bound/label arrays without copying.

        The batch-query path allocates one flat array per bound for the
        whole batch and hands each query a slice-backed view, so that a
        single vectorised ``tighten``/``classify`` over the flat arrays
        is visible through every per-query state (and vice versa during
        refinement).  The arrays must be 1-D, equally sized, and match
        ``keys``; they are adopted as-is, so callers are responsible
        for initialising them to the paper's starting state
        ([0, 1] bounds, all-unknown labels).
        """
        state = cls.__new__(cls)
        state._keys = tuple(keys)
        n = len(state._keys)
        if n == 0:
            raise ValueError("candidate state requires at least one candidate")
        if not (lower.shape == upper.shape == labels.shape == (n,)):
            raise ValueError("bound/label arrays must be 1-D with one entry per key")
        state.lower = lower
        state.upper = upper
        state.labels = labels
        state._pad = float(pad)
        return state

    # ------------------------------------------------------------------

    @property
    def keys(self) -> tuple[Hashable, ...]:
        return self._keys

    @property
    def size(self) -> int:
        return len(self._keys)

    @property
    def pad(self) -> float:
        return self._pad

    def unknown_mask(self) -> np.ndarray:
        return self.labels == _UNKNOWN

    def unknown_indices(self) -> np.ndarray:
        return np.flatnonzero(self.labels == _UNKNOWN)

    @property
    def n_unknown(self) -> int:
        return int((self.labels == _UNKNOWN).sum())

    @property
    def unknown_fraction(self) -> float:
        return self.n_unknown / self.size

    def label_of(self, index: int) -> Label:
        return label_from_code(self.labels[index])

    def satisfied_indices(self) -> np.ndarray:
        return np.flatnonzero(self.labels == _SATISFY)

    # ------------------------------------------------------------------

    def tighten(
        self,
        lower: np.ndarray | None = None,
        upper: np.ndarray | None = None,
        only_unknown: bool = True,
    ) -> None:
        """Intersect current bounds with newly computed ones.

        New values are widened by the pad before intersection so that
        floating-point rounding in verifier arithmetic can never
        exclude the true probability.  Following the paper, bounds of
        already-classified objects are left untouched by default.
        """
        mask = self.unknown_mask() if only_unknown else np.ones(self.size, bool)
        if lower is not None:
            candidate = np.clip(np.asarray(lower, dtype=float) - self._pad, 0.0, 1.0)
            self.lower[mask] = np.maximum(self.lower[mask], candidate[mask])
        if upper is not None:
            candidate = np.clip(np.asarray(upper, dtype=float) + self._pad, 0.0, 1.0)
            self.upper[mask] = np.minimum(self.upper[mask], candidate[mask])
        # Collapse hairline inversions caused by independent roundings.
        crossed = self.lower > self.upper
        if np.any(crossed):
            gap = self.lower[crossed] - self.upper[crossed]
            if np.any(gap > 1e-6):
                raise ValueError("inconsistent bounds produced by a verifier")
            midpoint = 0.5 * (self.lower[crossed] + self.upper[crossed])
            self.lower[crossed] = midpoint
            self.upper[crossed] = midpoint

    def set_exact(self, index: int, probability: float) -> None:
        """Collapse one candidate's bound to an exactly computed value."""
        lo = np.clip(probability - self._pad, 0.0, 1.0)
        hi = np.clip(probability + self._pad, 0.0, 1.0)
        # Exact computation supersedes earlier (padded) verifier bounds,
        # but must stay consistent with them.
        self.lower[index] = max(min(lo, self.upper[index]), min(self.lower[index], hi))
        self.upper[index] = min(max(hi, self.lower[index]), max(self.upper[index], lo))

    def classify(self, threshold: float, tolerance: float) -> None:
        """Re-run the classifier on all still-unknown candidates."""
        mask = self.unknown_mask()
        if not np.any(mask):
            return
        codes = classify_arrays(self.lower, self.upper, threshold, tolerance)
        self.labels[mask] = codes[mask]
