"""Refinement: exact qualification probabilities, whole or incremental.

The exact probability of object ``i`` being the nearest neighbour is

    p_i = ∫ d_i(r) · Π_{k≠i} (1 − D_k(r)) dr                      ([5])

Because every pdf is piecewise-constant, every cdf piecewise-linear,
and the subregion grid contains all their breakpoints below ``f_min``,
the integrand is a polynomial of degree ≤ |C| − 1 inside each inner
subregion (and identically zero beyond ``f_min``, where the object
achieving ``f_min`` has survival 0).  Gauss–Legendre with
``⌈|C|/2⌉ (+ margin)`` nodes per subregion therefore evaluates each
piece *exactly* — see :mod:`repro.numerics.quadrature`.

The work per subregion factors: evaluating the exclusion products
``Π_{k≠i}(1 − D_k(x))`` at the subregion's quadrature nodes costs
O(|C|·nodes) and serves *every* object at once, because

    p_ij = s_ij · ½ · Σ_n w_n Π_{k≠i}(1 − D_k(x_n))

(the ``s_ij/width`` density times the half-width cancels the width).
The refiner therefore caches one weighted-exclusion vector per
subregion, so

* :meth:`Refiner.exact_all` — the **Basic** method of Section V —
  materialises all of them (cost O(|C|² · M), Table III's bound), and
* :meth:`Refiner.refine_object` — **incremental refinement**
  (Section IV-D) — materialises only the subregions it visits,
  collapsing each visited subregion's bound slice
  ``[s_ij·q_ij.l, s_ij·q_ij.u]`` to the exact ``p_ij`` and re-running
  the classifier, stopping as soon as the object is labelled.  The
  slice bounds come from the verifiers when available ("the knowledge
  accumulated by the verifiers ... can facilitate the refinement
  process"), or are the vacuous ``[0, s_ij]`` for the *Refine*
  strategy that skips verification.
* :meth:`Refiner.refine_objects` — the columnar variant of the above:
  one vectorised sweep refines *all* still-unknown candidates
  together, warming quadrature for every active candidate's next
  subregion at once and classifying with
  :func:`~repro.core.classifier.classify_arrays`.  Each candidate
  visits its subregions in exactly the order, with exactly the
  floating-point operations, of :meth:`Refiner.refine_object`, so
  labels and bounds are bit-identical to the sequential loop.

Columnar substrate
------------------
Survival matrices at quadrature nodes come from the subregion table's
:class:`~repro.uncertainty.columnar.DistributionPack` (one batched
kernel call, no per-object ``cdf`` dispatch), and the per-subregion
weighted-exclusion vectors live in a lazily materialised dense
``(|C|, M−1)`` matrix guarded by a filled-column mask instead of a
``dict`` of vectors.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import classify_arrays
from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery
from repro.numerics.quadrature import gauss_legendre_nodes, nodes_for_degree

__all__ = ["Refiner"]

#: Subregions per chunk in vectorised evaluation; bounds peak memory at
#: roughly ``|C| * chunk * nodes`` floats.
_CHUNK = 64

_UNKNOWN, _SATISFY, _FAIL = 0, 1, 2


class Refiner:
    """Exact integration services bound to one subregion table."""

    def __init__(
        self,
        table: SubregionTable,
        quadrature_margin: int = 1,
        order: str = "widest",
    ) -> None:
        if order not in ("widest", "left"):
            raise ValueError("order must be 'widest' or 'left'")
        self._table = table
        degree = max(table.size - 1, 1)
        self._nodes = nodes_for_degree(degree) + int(quadrature_margin)
        self._order = order
        #: Dense (|C|, M−1) matrix of weighted exclusion sums
        #: ``W[i, j] = Σ_n w_n Π_{k≠i}(1−D_k(x_jn))``, materialised
        #: lazily; ``_filled[j]`` marks the columns computed so far.
        self._weighted: np.ndarray | None = None
        self._filled: np.ndarray | None = None
        #: Object-subregion integrals consumed (diagnostics).
        self.integrations = 0
        #: Distinct subregions whose quadrature was evaluated.
        self.subregions_evaluated = 0

    @property
    def table(self) -> SubregionTable:
        return self._table

    @property
    def nodes_per_subregion(self) -> int:
        return self._nodes

    # ------------------------------------------------------------------
    # Shared quadrature cache
    # ------------------------------------------------------------------

    def _survival_matrix(self, xs: np.ndarray) -> np.ndarray:
        """``1 − D_k(x)`` for every candidate ``k`` and node ``x``.

        One columnar kernel call over the packed histograms;
        bit-identical to stacking per-candidate ``1 − d.cdf(xs)`` rows.
        """
        matrix = self._table.pack.sf_many(xs)
        np.clip(matrix, 0.0, 1.0, out=matrix)
        return matrix

    def _weighted_matrix(self) -> np.ndarray:
        """The dense weighted-exclusion matrix (allocated on first use)."""
        if self._weighted is None:
            table = self._table
            self._weighted = np.zeros((table.size, table.n_inner))
            self._filled = np.zeros(table.n_inner, dtype=bool)
        return self._weighted

    def _ensure_weighted_excl(self, js) -> None:
        """Materialise weighted-exclusion columns for subregions ``js``."""
        weighted_matrix = self._weighted_matrix()
        requested = np.unique(np.asarray(js, dtype=np.intp))
        if requested.size == 0:
            return
        missing = requested[~self._filled[requested]]
        if missing.size == 0:
            return
        table = self._table
        n_objects = table.size
        xs_unit, ws = gauss_legendre_nodes(self._nodes)
        edges = table.edges
        for start in range(0, missing.size, _CHUNK):
            chunk = missing[start : start + _CHUNK]
            mids = 0.5 * (edges[chunk] + edges[chunk + 1])
            halves = 0.5 * (edges[chunk + 1] - edges[chunk])
            nodes = mids[:, None] + halves[:, None] * xs_unit[None, :]
            survival = self._survival_matrix(nodes.reshape(-1))
            zero = survival <= 0.0
            logs = np.log(np.where(zero, 1.0, survival))
            col_zero = zero.sum(axis=0)
            col_log = logs.sum(axis=0)
            zero_excl = col_zero[None, :] - zero.astype(np.int64)
            log_excl = col_log[None, :] - logs
            excl = np.where(zero_excl > 0, 0.0, np.exp(log_excl))
            # (objects, chunk): weighted node sums per subregion.
            weighted_matrix[:, chunk] = np.einsum(
                "imn,n->im", excl.reshape(n_objects, chunk.size, -1), ws
            )
            self._filled[chunk] = True
            self.subregions_evaluated += int(chunk.size)

    # ------------------------------------------------------------------
    # Exact probabilities
    # ------------------------------------------------------------------

    def exact_subregion_probability(self, i: int, j: int) -> float:
        """``p_ij = ∫_{S_j} d_i(r) Π_{k≠i}(1 − D_k(r)) dr`` exactly."""
        s_ij = float(self._table.s_inner[i, j])
        if s_ij <= 0.0:
            return 0.0
        self._ensure_weighted_excl(np.asarray([j]))
        self.integrations += 1
        return 0.5 * s_ij * float(self._weighted[i, j])

    def exact_probability(self, i: int) -> float:
        """The full qualification probability of candidate ``i``.

        A masked dot product over the weighted-exclusion matrix — one
        vectorised accumulation instead of a Python loop over
        subregions, clamped to [0, 1] exactly as before.
        """
        table = self._table
        s_row = np.asarray(table.s_inner[i], dtype=float)
        js = np.flatnonzero(s_row > 0.0)
        self._ensure_weighted_excl(js)
        self.integrations += int(js.size)
        if js.size == 0:
            return 0.0
        total = 0.5 * float(np.dot(s_row[js], self._weighted[i, js]))
        return min(max(total, 0.0), 1.0)

    def exact_all(self) -> np.ndarray:
        """Exact probabilities of *all* candidates (the Basic method)."""
        table = self._table
        all_js = np.arange(table.n_inner)
        self._ensure_weighted_excl(all_js)
        result = 0.5 * np.einsum(
            "ij,ij->i", table.s_inner, self._weighted_matrix()
        )
        self.integrations += table.size * table.n_inner
        return np.clip(result, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Incremental refinement (Section IV-D)
    # ------------------------------------------------------------------

    def refine_object(
        self,
        i: int,
        states: CandidateStates,
        query: CPNNQuery,
        use_verifier_slices: bool = True,
        batch: int = 8,
    ) -> int:
        """Refine candidate ``i`` until classified; returns the number
        of subregions that had to be integrated.

        ``use_verifier_slices=False`` reproduces the *Refine* strategy
        of Section V, which runs incremental refinement without any
        verifier knowledge (every slice starts at ``[0, s_ij]``).

        The quadrature cache is warmed ``batch`` subregions at a time;
        bounds are updated and the classifier re-run after every single
        subregion, as Section IV-D prescribes.
        """
        table = self._table
        s = np.asarray(table.s_inner[i], dtype=float)
        if use_verifier_slices:
            lo = s * table.q_lower[i]
            up = s * table.q_upper[i]
        else:
            lo = np.zeros_like(s)
            up = s.copy()
        cur_lo = float(lo.sum())
        cur_up = float(up.sum())
        pad = states.pad

        relevant = np.flatnonzero((s > 0.0) | (up > lo))
        if self._order == "widest":
            relevant = relevant[np.argsort(-(up - lo)[relevant], kind="stable")]

        # Track the running bound in plain floats; the state arrays are
        # only touched once, when the object's label is decided.
        best_lo = float(states.lower[i])
        best_up = float(states.upper[i])
        threshold = query.threshold
        tolerance = query.tolerance
        s_list = s.tolist()
        lo_list = lo.tolist()
        up_list = up.tolist()

        integrated = 0
        label = _UNKNOWN
        for start in range(0, relevant.size, max(batch, 1)):
            if label != _UNKNOWN:
                break
            chunk = relevant[start : start + max(batch, 1)]
            self._ensure_weighted_excl(chunk)
            for j in chunk:
                j = int(j)
                p_ij = 0.5 * s_list[j] * float(self._weighted[i, j])
                cur_lo += p_ij - lo_list[j]
                cur_up += p_ij - up_list[j]
                lo_list[j] = p_ij
                up_list[j] = p_ij
                integrated += 1
                best_lo = max(best_lo, min(max(cur_lo - pad, 0.0), 1.0))
                best_up = min(best_up, min(max(cur_up + pad, 0.0), 1.0))
                if best_lo > best_up:
                    best_lo = best_up = 0.5 * (best_lo + best_up)
                if best_up < threshold:
                    label = _FAIL
                elif best_lo >= threshold or best_up - best_lo <= tolerance:
                    label = _SATISFY
                if label != _UNKNOWN:
                    break
        self.integrations += integrated
        if label == _UNKNOWN:
            # Every subregion is exact now: collapse to the exact value.
            exact = min(max(cur_lo, 0.0), 1.0)
            best_lo = min(max(exact - pad, 0.0), 1.0)
            best_up = min(max(exact + pad, 0.0), 1.0)
            # Width is ~2·pad ≤ any admissible tolerance except Δ=0 with
            # the bound exactly at threshold; break the tie with the
            # exact value, as computing further cannot help.
            label = _SATISFY if exact >= threshold else _FAIL
        states.lower[i] = best_lo
        states.upper[i] = best_up
        states.labels[i] = label
        return integrated

    def refine_objects(
        self,
        indices,
        states: CandidateStates,
        query: CPNNQuery,
        use_verifier_slices: bool = True,
        batch: int = 8,
    ) -> int:
        """Refine many candidates in one vectorised sweep.

        Semantically a loop of :meth:`refine_object` over ``indices``
        (candidates are independent: each reads only the shared table
        and writes only its own state row), restructured so that every
        step advances *all* still-unknown candidates by one subregion:
        quadrature is warmed for the whole front of next subregions at
        once, bound updates are flat array arithmetic, and labels come
        from one :func:`classify_arrays` call.  Per-candidate
        visitation order and floating-point operations are exactly
        those of :meth:`refine_object`, so the resulting labels and
        bounds are bit-identical to the sequential loop.

        Returns the total number of object-subregion integrations.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            return 0
        if idx.size == 1:
            # The sweep's array plumbing costs more than it saves for a
            # lone survivor; the scalar path is bit-identical.
            return self.refine_object(
                int(idx[0]), states, query, use_verifier_slices, batch=batch
            )
        table = self._table
        s = np.asarray(table.s_inner[idx], dtype=float)
        if use_verifier_slices:
            lo = s * table.q_lower[idx]
            up = s * table.q_upper[idx]
        else:
            lo = np.zeros_like(s)
            up = s.copy()
        cur_lo = lo.sum(axis=1)
        cur_up = up.sum(axis=1)
        pad = states.pad
        threshold = query.threshold
        tolerance = query.tolerance

        relevant = (s > 0.0) | (up > lo)
        n_relevant = relevant.sum(axis=1)
        # Row-wise visitation order, irrelevant subregions pushed past
        # the end; the stable full-row sort reproduces refine_object's
        # "stable argsort of the relevant slice" tie-breaking.
        if self._order == "widest":
            key = np.where(relevant, -(up - lo), np.inf)
        else:
            key = np.where(
                relevant,
                np.arange(s.shape[1], dtype=float)[None, :],
                np.inf,
            )
        order = np.argsort(key, axis=1, kind="stable")

        best_lo = np.array(states.lower[idx], dtype=float)
        best_up = np.array(states.upper[idx], dtype=float)
        labels = np.zeros(idx.size, dtype=np.int8)
        integrated = 0
        step = 0
        batch = max(batch, 1)
        while True:
            active = np.flatnonzero((labels == _UNKNOWN) & (step < n_relevant))
            if active.size == 0:
                break
            if step % batch == 0:
                # Warm the whole front's next batch of subregions in
                # one quadrature pass — the same per-object look-ahead
                # refine_object uses, so the chunks fed to the
                # quadrature kernel stay big even when classification
                # needs only a step or two.
                window = order[active, step : step + batch]
                valid = (
                    np.arange(step, step + window.shape[1])[None, :]
                    < n_relevant[active, None]
                )
                self._ensure_weighted_excl(window[valid])
            js = order[active, step]
            p = 0.5 * s[active, js] * self._weighted[idx[active], js]
            cur_lo[active] += p - lo[active, js]
            cur_up[active] += p - up[active, js]
            integrated += int(active.size)
            cand_lo = np.minimum(np.maximum(cur_lo[active] - pad, 0.0), 1.0)
            cand_up = np.minimum(np.maximum(cur_up[active] + pad, 0.0), 1.0)
            b_lo = np.maximum(best_lo[active], cand_lo)
            b_up = np.minimum(best_up[active], cand_up)
            crossed = b_lo > b_up
            if np.any(crossed):
                midpoint = 0.5 * (b_lo[crossed] + b_up[crossed])
                b_lo[crossed] = midpoint
                b_up[crossed] = midpoint
            best_lo[active] = b_lo
            best_up[active] = b_up
            labels[active] = classify_arrays(b_lo, b_up, threshold, tolerance)
            step += 1
        self.integrations += integrated

        exhausted = np.flatnonzero(labels == _UNKNOWN)
        if exhausted.size:
            # Every subregion is exact now: collapse to the exact value
            # and break the tie with it, as refine_object does.
            exact = np.minimum(np.maximum(cur_lo[exhausted], 0.0), 1.0)
            best_lo[exhausted] = np.minimum(np.maximum(exact - pad, 0.0), 1.0)
            best_up[exhausted] = np.minimum(np.maximum(exact + pad, 0.0), 1.0)
            labels[exhausted] = np.where(exact >= threshold, _SATISFY, _FAIL)

        states.lower[idx] = best_lo
        states.upper[idx] = best_up
        states.labels[idx] = labels
        return integrated

    @staticmethod
    def _push_bounds(
        states: CandidateStates, i: int, lower: float, upper: float
    ) -> None:
        lower = min(max(lower, 0.0), 1.0)
        upper = min(max(upper, 0.0), 1.0)
        states.lower[i] = max(states.lower[i], lower)
        states.upper[i] = min(states.upper[i], upper)
        if states.lower[i] > states.upper[i]:
            midpoint = 0.5 * (states.lower[i] + states.upper[i])
            states.lower[i] = midpoint
            states.upper[i] = midpoint

    @staticmethod
    def _classify_one(states: CandidateStates, i: int, query: CPNNQuery) -> None:
        if states.labels[i] != _UNKNOWN:
            return
        code = classify_arrays(
            states.lower[i : i + 1],
            states.upper[i : i + 1],
            query.threshold,
            query.tolerance,
        )[0]
        states.labels[i] = code
