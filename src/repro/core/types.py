"""Typed query specs, answer labels, and the unified result shape.

All three query families are variants of one probabilistic-neighborhood
problem (Definition 1 generalised): a query point plus two quality
constraints, optionally specialised by ``k`` (k-NN) or a ``radius``
(range).  The spec hierarchy mirrors that:

* :class:`QuerySpec` — the shared base: point ``q``, threshold ``P``,
  tolerance ``Δ``;
* :class:`CPNNQuery` — the paper's C-PNN (Definition 1);
* :class:`CKNNQuery` — constrained probabilistic k-NN (``k`` nearest);
* :class:`CRangeQuery` — constrained probabilistic range (``radius``).

``UncertainEngine.execute`` dispatches on the spec type and always
returns the same :class:`QueryResult` shape (DESIGN.md §4).

The constraints (Definition 1):

* **threshold** ``P ∈ (0, 1]`` — only objects whose qualification
  probability is (or may be) at least ``P`` are returned;
* **tolerance** ``Δ ∈ [0, 1]`` — the amount of *estimation error*
  allowed: an object may be returned while its probability is only
  known to lie in a band of width ≤ Δ crossing the threshold.

The resulting engine contract (proved in DESIGN.md §5 and enforced by
the property tests) is::

    {i : p_i >= P}  ⊆  answer  ⊆  {i : p_i >= P - Δ}
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

__all__ = [
    "AnswerRecord",
    "CKNNQuery",
    "CPNNQuery",
    "CPNNResult",
    "CRangeQuery",
    "Label",
    "PhaseTimings",
    "QueryPlan",
    "QueryResult",
    "QuerySpec",
]


class Label(enum.Enum):
    """Classification of a candidate against the query's conditions.

    Mirrors the three outcomes of the paper's classifier (Section
    III-B): *satisfy* objects are answers, *fail* objects can never be
    answers, *unknown* objects need more work (another verifier, or
    refinement).
    """

    UNKNOWN = "unknown"
    SATISFY = "satisfy"
    FAIL = "fail"


@dataclass(frozen=True)
class QuerySpec:
    """Base of the typed query-spec hierarchy.

    Attributes
    ----------
    q:
        The query point — a float for 1-D data or a coordinate sequence
        for 2-D data.
    threshold:
        ``P ∈ (0, 1]``.  The paper's default in Section V is 0.3.
    tolerance:
        ``Δ ∈ [0, 1]``.  The paper's default in Section V is 0.01.
    """

    q: object
    threshold: float = 0.3
    tolerance: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold P must lie in (0, 1]")
        if not 0.0 <= self.tolerance <= 1.0:
            raise ValueError("tolerance Δ must lie in [0, 1]")


@dataclass(frozen=True)
class CPNNQuery(QuerySpec):
    """A C-PNN query: point ``q`` with threshold ``P`` and tolerance ``Δ``.

    The paper's Definition 1, unchanged — the spec carries no extra
    fields beyond the :class:`QuerySpec` base.
    """


@dataclass(frozen=True)
class CKNNQuery(QuerySpec):
    """A constrained probabilistic k-NN query (Section VI future work).

    Returns the objects whose probability of being among the ``k``
    nearest neighbours of ``q`` is at least ``threshold``.  The k-NN
    bounds are either exact or the verifier's algebraic pair, so
    ``tolerance`` is currently inert (kept for the shared contract);
    its default is 0 accordingly.

    ``k`` is validated here, at construction, so a bad value can never
    surface mid-batch from deep inside the filtering kernels.  A valid
    ``k`` may still exceed the engine's object count: the engine
    resolves that *before any filtering or distribution work* as the
    trivial case — every object is certainly among the ``k`` nearest,
    so all satisfy with probability exactly 1 (DESIGN.md §8), matching
    the scalar reference path.
    """

    tolerance: float = 0.0
    k: int = field(kw_only=True)

    def __post_init__(self) -> None:
        super().__post_init__()
        if isinstance(self.k, bool) or int(self.k) != self.k or self.k < 1:
            raise ValueError(f"k must be an integer >= 1, got {self.k!r}")
        # Normalise float-typed whole numbers (k=3.0) so downstream
        # integer arithmetic never sees a float.
        object.__setattr__(self, "k", int(self.k))


@dataclass(frozen=True)
class CRangeQuery(QuerySpec):
    """A constrained probabilistic range query.

    Returns the objects within ``radius`` of ``q`` with probability at
    least ``threshold``.  Range probabilities are evaluated exactly
    (either by a bounding-box decision or one cdf lookup), so
    ``tolerance`` never changes the answer; its default is 0.
    """

    tolerance: float = 0.0
    radius: float = field(kw_only=True)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.radius < 0.0:
            raise ValueError("radius must be non-negative")


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each phase of Figure 3's framework."""

    filtering: float = 0.0
    initialization: float = 0.0
    verification: float = 0.0
    refinement: float = 0.0

    @property
    def total(self) -> float:
        return self.filtering + self.initialization + self.verification + self.refinement


@dataclass
class AnswerRecord:
    """Everything known about one candidate at the end of a query."""

    key: Hashable
    label: Label
    lower: float
    upper: float
    exact: float | None = None

    @property
    def bound_width(self) -> float:
        return self.upper - self.lower


@dataclass
class QueryResult:
    """Uniform outcome of one :meth:`UncertainEngine.execute` call.

    Every spec type — C-PNN, k-NN, range — produces this same shape
    (DESIGN.md §4); fields that a family does not populate keep their
    defaults.

    Attributes
    ----------
    answers:
        Keys of the objects labelled *satisfy*, i.e. the query answer.
    records:
        Per-candidate diagnostics (final bound, label, exact
        probability when it was computed).  C-PNN results carry one
        record per *filtered candidate*; k-NN and range results carry
        one record per object (pruned objects have 0/0 bounds),
        matching their pre-façade scalar paths.
    fmin:
        The filtering radius used to prune (``f_min`` for PNN,
        ``f_min^k`` for k-NN, the query radius for range queries).
    timings:
        Per-phase wall-clock times (Figure 11's decomposition).
    unknown_after_verifier:
        Fraction of candidates still unknown after each verifier in
        the chain ran (Figure 12's series); empty when verification
        was skipped or the family has a single-stage verifier.
    finished_after_verification:
        Whether the query needed no refinement at all (Figure 13's
        metric).
    refined_objects:
        Number of candidates that entered the exact-evaluation /
        refinement phase.
    spec:
        The (normalised) spec that produced this result, when it came
        through the ``execute``/``execute_batch`` façade.
    cache_hits / cache_misses:
        Distance-distribution cache traffic attributable to this
        query, for paths routed through the engine's LRU cache.
    diagnostics:
        Out-of-band execution notes, populated only when something
        noteworthy happened on the way to this (still exact) answer —
        e.g. ``diagnostics["executor"]`` when a worker died and the
        batch recovered inline, or ``diagnostics["approximate"]`` when
        the service's ε-early-answer path widened the tolerance under
        a deadline.  Empty on the happy path.
    """

    answers: tuple
    records: list[AnswerRecord] = field(default_factory=list)
    fmin: float = float("nan")
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    unknown_after_verifier: dict[str, float] = field(default_factory=dict)
    finished_after_verification: bool = False
    refined_objects: int = 0
    spec: QuerySpec | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    diagnostics: dict = field(default_factory=dict)

    def record_for(self, key: Hashable) -> AnswerRecord:
        for record in self.records:
            if record.key == key:
                return record
        raise KeyError(key)

    def __repr__(self) -> str:
        """Compact summary — a result can carry thousands of records,
        so the dataclass default (which dumps them all) is useless at a
        REPL and hazardous in logs."""
        spec = type(self.spec).__name__ if self.spec is not None else None
        summary = (
            f"{type(self).__name__}(answers={len(self.answers)}, "
            f"records={len(self.records)}, fmin={self.fmin:.6g}, "
            f"refined_objects={self.refined_objects}, spec={spec}"
        )
        if self.diagnostics:
            summary += f", diagnostics={sorted(self.diagnostics)}"
        return summary + ")"


#: Legacy name of :class:`QueryResult` (pre-façade API), kept as an
#: alias so existing imports and isinstance checks continue to work.
CPNNResult = QueryResult


@dataclass
class QueryPlan:
    """The plan/stats view returned by :meth:`UncertainEngine.explain`.

    A cheap, side-effect-free description of how ``execute`` would
    evaluate a spec: which pipeline stages run, which index serves the
    filtering phase, what the filter would keep, and the current state
    of the engine's caches.  Only the filtering phase is actually
    executed (no distributions are built, no probability is computed).

    Attributes
    ----------
    spec:
        The normalised spec being explained.
    family:
        ``'cpnn'`` / ``'cknn'`` / ``'crange'``.
    strategy:
        The evaluation strategy a C-PNN spec would use; ``None`` for
        families without strategy variants.
    index:
        ``'rtree'`` or ``'linear'`` — what serves single-query PNN
        filtering (batch paths always use the vectorised MBR sweep).
    stages:
        Human-readable pipeline stages, in execution order.
    verifiers:
        Names of the verifier chain a C-PNN spec would run (empty for
        other families or non-VR strategies).
    candidates:
        Objects surviving the filtering phase (for range specs: the
        objects whose bounding boxes straddle the range and therefore
        need probability evaluation).
    pruned:
        Objects eliminated by filtering alone (for range specs this
        counts both certain-outside *and* certain-inside objects —
        everything decided without touching a pdf).
    fmin:
        The pruning radius filtering would use (``f_min``,
        ``f_min^k``, or the query radius).
    caches:
        Snapshot of the engine's cache configuration and counters.
    shards:
        Sharded-execution snapshot (empty for single engines): shard
        count, per-shard occupancy and skew, rebalance counters, and
        the last batch's parallel accounting (summed lane seconds vs.
        wall seconds — the realised parallel speedup).  See
        :class:`~repro.core.engine.sharded.ShardedEngine` and
        DESIGN.md §12.
    executor:
        The executor failure story at plan time: active/configured
        backend, the canonical failure counters (worker deaths,
        respawns, retries, timeouts, quarantines, shared-memory
        fallbacks — structurally 0 for inline engines), and the
        circuit-breaker snapshot (DESIGN.md §14).
    storage:
        The column-store story at plan time (DESIGN.md §16): the
        configured backend plus aggregated buffer-pool counters
        (logical reads, page faults, evictions, resident bytes,
        hit rate) over every engine-owned store — structurally
        all-zero/all-hit for ``ram`` engines.
    continuous:
        The continuous-query tier at plan time (DESIGN.md §17):
        ``{"attached": False}`` when no monitor is registered, else
        registered/replayed/invalidated counters and the safe-region
        hit rate of the attached
        :class:`~repro.continuous.monitor.ContinuousMonitor`.
    """

    spec: QuerySpec
    family: str
    strategy: str | None
    index: str
    stages: list[str] = field(default_factory=list)
    verifiers: tuple[str, ...] = ()
    candidates: int = 0
    pruned: int = 0
    fmin: float = float("nan")
    caches: dict = field(default_factory=dict)
    shards: dict = field(default_factory=dict)
    executor: dict = field(default_factory=dict)
    storage: dict = field(default_factory=dict)
    continuous: dict = field(default_factory=dict)

    def describe(self) -> str:
        """A printable multi-line summary of the plan."""
        lines = [
            f"{type(self.spec).__name__} @ q={self.spec.q!r} "
            f"(P={self.spec.threshold}, Δ={self.spec.tolerance})",
            f"  family    : {self.family}"
            + (f"  strategy: {self.strategy}" if self.strategy else ""),
            f"  index     : {self.index}",
            f"  filtering : {self.candidates} candidates "
            f"({self.pruned} pruned), radius {self.fmin:.6g}",
        ]
        if self.verifiers:
            lines.append("  verifiers : " + " → ".join(self.verifiers))
        for i, stage in enumerate(self.stages, 1):
            lines.append(f"  stage {i}   : {stage}")
        for name, stats in self.caches.items():
            lines.append(f"  cache     : {name} {stats}")
        if self.shards:
            occupancy = self.shards.get("occupancy")
            lines.append(
                f"  shards    : {self.shards.get('n_shards')} "
                f"(occupancy {occupancy}, "
                f"{self.shards.get('max_workers')} workers)"
            )
            parallel = self.shards.get("parallel") or {}
            if parallel:
                lines.append(
                    "  parallel  : last batch "
                    f"{parallel.get('lane_s', 0.0):.4g}s lane work in "
                    f"{parallel.get('wall_s', 0.0):.4g}s wall "
                    f"({parallel.get('parallel_speedup', 1.0):.2f}x)"
                )
        if self.executor:
            breaker = self.executor.get("breaker") or {}
            lines.append(
                f"  executor  : {self.executor.get('backend')} "
                f"(configured {self.executor.get('configured')}, "
                f"breaker {breaker.get('state', 'disabled')}, "
                f"{self.executor.get('worker_failures', 0)} worker failures)"
            )
        if self.continuous.get("attached"):
            lines.append(
                f"  continuous: {self.continuous.get('registered', 0)} registered, "
                f"{self.continuous.get('ticks', 0)} ticks, "
                f"hit rate {self.continuous.get('hit_rate', 1.0):.3f} "
                f"({self.continuous.get('replayed', 0)} replayed / "
                f"{self.continuous.get('reexecuted', 0)} re-executed)"
            )
        return "\n".join(lines)
