"""Query types and answer labels for the C-PNN (Definition 1).

A Constrained Probabilistic Nearest-Neighbor query is a query point
plus two quality constraints:

* **threshold** ``P ∈ (0, 1]`` — only objects whose qualification
  probability is (or may be) at least ``P`` are returned;
* **tolerance** ``Δ ∈ [0, 1]`` — the amount of *estimation error*
  allowed: an object may be returned while its probability is only
  known to lie in a band of width ≤ Δ crossing the threshold.

The resulting engine contract (proved in DESIGN.md §5 and enforced by
the property tests) is::

    {i : p_i >= P}  ⊆  answer  ⊆  {i : p_i >= P - Δ}
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["CPNNQuery", "Label"]


class Label(enum.Enum):
    """Classification of a candidate against the C-PNN conditions.

    Mirrors the three outcomes of the paper's classifier (Section
    III-B): *satisfy* objects are answers, *fail* objects can never be
    answers, *unknown* objects need more work (another verifier, or
    refinement).
    """

    UNKNOWN = "unknown"
    SATISFY = "satisfy"
    FAIL = "fail"


@dataclass(frozen=True)
class CPNNQuery:
    """A C-PNN query: point ``q`` with threshold ``P`` and tolerance ``Δ``.

    Attributes
    ----------
    q:
        The query point — a float for 1-D data or a coordinate sequence
        for 2-D data.
    threshold:
        ``P ∈ (0, 1]``.  The paper's default in Section V is 0.3.
    tolerance:
        ``Δ ∈ [0, 1]``.  The paper's default in Section V is 0.01.
    """

    q: object
    threshold: float = 0.3
    tolerance: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold P must lie in (0, 1]")
        if not 0.0 <= self.tolerance <= 1.0:
            raise ValueError("tolerance Δ must lie in [0, 1]")


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each phase of Figure 3's framework."""

    filtering: float = 0.0
    initialization: float = 0.0
    verification: float = 0.0
    refinement: float = 0.0

    @property
    def total(self) -> float:
        return self.filtering + self.initialization + self.verification + self.refinement


@dataclass
class AnswerRecord:
    """Everything known about one candidate at the end of a query."""

    key: Hashable
    label: Label
    lower: float
    upper: float
    exact: float | None = None

    @property
    def bound_width(self) -> float:
        return self.upper - self.lower


@dataclass
class CPNNResult:
    """Outcome of a C-PNN evaluation.

    Attributes
    ----------
    answers:
        Keys of the objects labelled *satisfy*, i.e. the query answer.
    records:
        Per-candidate diagnostics (final bound, label, exact
        probability when it was computed).
    fmin:
        The filtering radius used to prune.
    timings:
        Per-phase wall-clock times (Figure 11's decomposition).
    unknown_after_verifier:
        Fraction of candidates still unknown after each verifier in
        the chain ran (Figure 12's series); empty when verification
        was skipped.
    finished_after_verification:
        Whether the query needed no refinement at all (Figure 13's
        metric).
    refined_objects:
        Number of candidates that entered the refinement phase.
    """

    answers: tuple
    records: list[AnswerRecord] = field(default_factory=list)
    fmin: float = float("nan")
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    unknown_after_verifier: dict[str, float] = field(default_factory=dict)
    finished_after_verification: bool = False
    refined_objects: int = 0

    def record_for(self, key: Hashable) -> AnswerRecord:
        for record in self.records:
            if record.key == key:
                return record
        raise KeyError(key)
