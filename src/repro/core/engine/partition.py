"""STR spatial partitioning for :class:`~repro.core.engine.sharded.ShardedEngine`.

Sort-Tile-Recursive tiling over MBR centers — the same packing rule
:func:`repro.index.str_pack.str_bulk_load` uses for R-tree leaves,
lifted one level up: instead of packing tree pages, it packs whole
*shards*, so each shard covers a compact tile of space and a query's
candidate set clusters on few shards (the locality that makes the
per-shard sweeps worth fanning out; DESIGN.md §12).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["str_shard_split"]


def _route_cuts(sorted_values: np.ndarray, boundaries: Sequence[int]) -> np.ndarray:
    """Routing cut points: the first value of each group after the first.

    ``searchsorted(cuts, x, side='right')`` then maps a coordinate to
    its group.  Empty groups repeat their neighbour's cut, so new
    objects skip past them until a rebalance refills the tiling.
    """
    n = len(sorted_values)
    return np.asarray(
        [sorted_values[min(int(b), n - 1)] for b in boundaries], dtype=float
    )


def _split_sorted(order: np.ndarray, parts: int) -> tuple[list[np.ndarray], list[int]]:
    """Split a sort order into ``parts`` near-equal groups + boundaries."""
    groups = np.array_split(order, parts)
    boundaries = list(np.cumsum([len(g) for g in groups])[:-1])
    return groups, boundaries


def str_shard_split(objects: Sequence, n_shards: int):
    """STR-partition objects into ``n_shards`` spatial groups.

    Returns ``(groups, router)`` where ``groups`` is a list of
    ``n_shards`` object lists (some possibly empty when there are fewer
    objects than shards) and ``router`` maps a *new* object to the
    shard whose tile contains its MBR center (``None`` when ``objects``
    is empty).  1-D data is sliced along the line; 2-D data is tiled
    STR-style — ``ceil(sqrt(n_shards))`` x-slabs, each sliced along y —
    mirroring :func:`repro.index.str_pack.str_bulk_load`'s leaf
    packing.

    The router is a *placement* rule, not a correctness contract: query
    answers never depend on which shard holds an object (the engine
    reconciles candidates in global object order), so routing only has
    to be deterministic and roughly balanced.
    """
    groups: list[list] = [[] for _ in range(n_shards)]
    if not objects:
        return groups, None
    centers = np.array(
        [np.asarray(obj.mbr.center, dtype=float).reshape(-1) for obj in objects]
    )
    n, dim = centers.shape
    if dim == 1 or n_shards == 1:
        xs = centers[:, 0]
        order = np.argsort(xs, kind="stable")
        idx_groups, boundaries = _split_sorted(order, n_shards)
        cuts = _route_cuts(xs[order], boundaries)
        for sid, idx in enumerate(idx_groups):
            groups[sid] = [objects[i] for i in idx]

        def route(obj, _cuts=cuts):
            x = float(np.asarray(obj.mbr.center, dtype=float).reshape(-1)[0])
            return int(np.searchsorted(_cuts, x, side="right"))

        return groups, route

    slabs = int(math.ceil(math.sqrt(n_shards)))
    tiles_per_slab = [
        n_shards // slabs + (1 if s < n_shards % slabs else 0) for s in range(slabs)
    ]
    xs, ys = centers[:, 0], centers[:, 1]
    x_order = np.argsort(xs, kind="stable")
    # Slab sizes proportional to their tile counts, so tiles stay
    # near-equal across slabs of different widths.
    total_tiles = sum(tiles_per_slab)
    slab_ends = [
        int(round(n * sum(tiles_per_slab[: s + 1]) / total_tiles))
        for s in range(slabs)
    ]
    slab_starts = [0] + slab_ends[:-1]
    x_cuts = _route_cuts(xs[x_order], slab_starts[1:])
    offsets = [sum(tiles_per_slab[:s]) for s in range(slabs)]
    y_cuts: list[np.ndarray] = []
    for s in range(slabs):
        slab_idx = x_order[slab_starts[s] : slab_ends[s]]
        slab_order = slab_idx[np.argsort(ys[slab_idx], kind="stable")]
        idx_groups, boundaries = _split_sorted(slab_order, tiles_per_slab[s])
        if slab_order.size:
            y_cuts.append(_route_cuts(ys[slab_order], boundaries))
        else:
            y_cuts.append(np.zeros(len(boundaries)))
        for t, idx in enumerate(idx_groups):
            groups[offsets[s] + t] = [objects[i] for i in idx]

    def route(obj, _x_cuts=x_cuts, _y_cuts=y_cuts, _offsets=offsets):
        center = np.asarray(obj.mbr.center, dtype=float).reshape(-1)
        s = int(np.searchsorted(_x_cuts, float(center[0]), side="right"))
        t = int(np.searchsorted(_y_cuts[s], float(center[1]), side="right"))
        return _offsets[s] + t

    return groups, route
