"""Spec normalisation and verifier-chain resolution, shared by hosts.

Every object that *executes* specs — the single
:class:`~repro.core.engine.UncertainEngine`, a
:class:`~repro.core.engine.sharded.ShardedEngine`, and the sharded
engine's internal execution lanes — needs the same four small
behaviours: normalise a bare point into a default spec, normalise the
legacy ``query()`` argument shape, validate a strategy name, and
resolve the verifier chain serving a spec type through the
``EngineConfig.pipeline`` hook.  :class:`SpecDispatchMixin` provides
them against two host attributes: ``_config`` (an
:class:`~repro.core.engine.config.EngineConfig`) and the chain slots
``_chain`` / ``_chains`` the host initialises via
:meth:`SpecDispatchMixin._init_chains`.
"""

from __future__ import annotations

from repro.core.engine.config import Strategy
from repro.core.types import CPNNQuery, QuerySpec
from repro.core.verifiers.chain import VerifierChain
from repro.core.verifiers.mc import MCVerifier

__all__ = ["SpecDispatchMixin"]


class SpecDispatchMixin:
    """Spec/strategy normalisation + per-spec-type chain resolution."""

    def _init_chains(self) -> None:
        """Build the default verifier chain once (verifiers are
        stateless; see ``EngineConfig.chain_factory``) and the
        per-spec-type cache the ``pipeline`` hook fills."""
        self._chain = self._compose_chain(self._config.chain_factory())
        self._chains: dict[type, VerifierChain] = {}

    def _compose_chain(self, chain: VerifierChain) -> VerifierChain:
        """Apply config-driven chain tiers (currently: the MC tier)."""
        if not self._config.mc_tier:
            return chain
        if any(not v.certified for v in chain.verifiers):
            return chain
        mc = MCVerifier(
            trials=self._config.mc_trials,
            confidence=self._config.mc_confidence,
            seed=self._config.mc_seed,
        )
        return VerifierChain([mc, *chain.verifiers])

    @staticmethod
    def _as_spec(spec) -> QuerySpec:
        """Normalise a bare point into a default CPNNQuery."""
        if isinstance(spec, QuerySpec):
            return spec
        return CPNNQuery(spec)

    @staticmethod
    def _as_query(
        q, threshold: float | None, tolerance: float | None
    ) -> CPNNQuery:
        """Normalise a bare point or prepared query plus overrides."""
        if isinstance(q, QuerySpec) and not isinstance(q, CPNNQuery):
            raise TypeError(
                f"{type(q).__name__} specs go through execute(), not query()"
            )
        if isinstance(q, CPNNQuery):
            if threshold is None and tolerance is None:
                return q
            return CPNNQuery(
                q.q,
                threshold if threshold is not None else q.threshold,
                tolerance if tolerance is not None else q.tolerance,
            )
        return CPNNQuery(
            q,
            threshold if threshold is not None else 0.3,
            tolerance if tolerance is not None else 0.01,
        )

    def _as_strategy(self, strategy: str | None) -> str:
        strategy = strategy or self._config.strategy
        if strategy not in Strategy.ALL:
            raise ValueError(f"unknown strategy {strategy!r}")
        return strategy

    def _executor_backend(self) -> str:
        """The resolved execution backend serving this host — the
        sharded engine's ``executor=`` knob, or ``"serial"`` for hosts
        with no parallel substrate (the single engine, the lanes)."""
        return getattr(self, "_backend", None) or "serial"

    def _chain_for(self, spec_type: type) -> VerifierChain:
        """The verifier chain serving ``spec_type`` (pipeline hook)."""
        chain = self._chains.get(spec_type)
        if chain is None:
            custom = (
                self._config.pipeline(spec_type)
                if self._config.pipeline is not None
                else None
            )
            if custom is not None and not isinstance(custom, VerifierChain):
                raise TypeError(
                    "EngineConfig.pipeline must return a VerifierChain or None, "
                    f"got {type(custom).__name__}"
                )
            chain = (
                self._compose_chain(custom) if custom is not None else self._chain
            )
            self._chains[spec_type] = chain
        return chain
