"""The shared filter stage: single-query index + whole-batch MBR sweep.

One mixin owns everything the filtering phase needs — the single-query
R-tree (or linear scan) with its deferred-maintenance op queue, and
the incrementally maintained :class:`~repro.index.filtering.BatchMbrFilter`
serving every batch path — and implements the ``_maintain_*`` hooks the
registry's mutation primitives call, so index upkeep stays out of the
storage module and out of the executors.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.types import QuerySpec
from repro.index.filtering import (
    BatchMbrFilter,
    FilterResult,
    PnnFilter,
    filter_candidates,
)
from repro.index.str_pack import str_bulk_load

__all__ = ["FilterStageMixin"]


class FilterStageMixin:
    """Builds, maintains, and serves the engine's two filters."""

    def _init_filter_stage(self) -> None:
        self._filter: PnnFilter | Callable | None = None
        #: Column stores this engine created and must unlink on close
        #: (``config.storage != "ram"``; DESIGN.md §16).
        self._owned_stores: list = []
        #: Deferred single-query index maintenance: dynamic updates are
        #: queued as ("add"/"del", obj) pairs and folded into the
        #: R-tree only when a single-query path next needs it
        #: (:meth:`_single_filter`).  Batch paths filter through
        #: :class:`BatchMbrFilter`, so an update stream that is probed
        #: via ``execute_batch`` never pays Python tree surgery at all.
        #: Once the queue passes the rebuild threshold it is discarded
        #: and ``_filter_stale`` is set instead — a bounded marker, so a
        #: batch-only stream cannot pin unbounded stale objects.
        self._pending_tree_ops: list[tuple[str, object]] = []
        self._filter_stale = False
        self._build_filter()
        #: Vectorised whole-batch filter shared by query_batch and the
        #: routed k-NN/range paths.  Built with the rest of the index
        #: substrate for R-tree engines (it filters over the same MBRs
        #: the tree holds) and maintained *incrementally* across
        #: dynamic updates: insert appends a coordinate row, remove
        #: masks one (DESIGN.md §11).
        self._batch_filter: BatchMbrFilter | None = (
            self._make_batch_filter()
            if self._config.use_rtree and self._objects
            else None
        )

    # ------------------------------------------------------------------
    # Column-store backing (DESIGN.md §16)
    # ------------------------------------------------------------------

    def _store_options(self) -> dict:
        """``create_store`` keyword options for the configured backend."""
        if self._config.storage != "mmap":
            return {}
        return {
            "page_bytes": self._config.storage_page_bytes,
            "pool_pages": self._config.storage_pool_pages,
            "directory": self._config.storage_dir,
        }

    def _make_batch_filter(self) -> BatchMbrFilter:
        """A :class:`BatchMbrFilter` on the configured storage backend.

        ``ram`` builds the plain resident filter (zero overhead — the
        default path is untouched).  ``shm``/``mmap`` export the
        coordinate columns into an engine-owned store and serve the
        filter as a view over it; the store is released by
        :meth:`_release_stores` when the engine closes.  Sweeps are
        bit-identical across backends (property-tested), so the knob is
        invisible in the answers.
        """
        flt = BatchMbrFilter(self._objects)
        if self._config.storage == "ram":
            return flt
        store = flt.to_store(self._config.storage, **self._store_options())
        self._owned_stores.append(store)
        return BatchMbrFilter.from_store(store, self._objects)

    def _storage_stats(self) -> dict:
        """The ``stats()["storage"]`` payload: backend plus aggregated
        buffer-pool counters over every engine-owned store."""
        stats: dict = {
            "backend": self._config.storage,
            "stores": len(self._owned_stores),
        }
        totals = {
            "nbytes": 0,
            "logical_reads": 0,
            "page_faults": 0,
            "evictions": 0,
            "resident_bytes": 0,
        }
        for store in self._owned_stores:
            snapshot = store.stats()
            for key in totals:
                totals[key] += int(snapshot.get(key, 0))
        stats.update(totals)
        reads = totals["logical_reads"]
        stats["hit_rate"] = (
            1.0 - totals["page_faults"] / reads if reads else 1.0
        )
        return stats

    def _release_stores(self) -> None:
        """Close and unlink every engine-owned column store.

        The batch filter is a view over those stores, so it is dropped
        with them; the engine stays usable — the next batch path
        rebuilds it lazily (on fresh stores)."""
        if not self._owned_stores:
            return
        self._batch_filter = None
        while self._owned_stores:
            self._owned_stores.pop().close()

    def _build_filter(self) -> None:
        """(Re)build the single-query PNN filter for the object set."""
        self._pending_tree_ops.clear()
        self._filter_stale = False
        if not self._objects:
            self._filter = None
        elif self._config.use_rtree:
            tree = str_bulk_load(
                [(obj.mbr, obj) for obj in self._objects],
                max_entries=self._config.rtree_max_entries,
            )
            self._filter = PnnFilter(tree)
        else:
            self._filter = lambda q: filter_candidates(self._objects, q)

    def _single_filter(self) -> PnnFilter | Callable:
        """The single-query filter, with deferred maintenance applied.

        Dynamic updates queue their index work (DESIGN.md §11); this
        accessor settles the queue.  Small queues are folded into the
        tree with incremental Guttman insert/delete; past
        ``max(4, N/300)`` pending operations a fresh STR bulk load is
        cheaper than the per-operation tree surgery (measured: one
        Python-level insert costs ≈ the bulk-load share of ~300
        objects), so the queue collapses into one rebuild.
        """
        if self._filter_stale:
            self._build_filter()
            return self._filter
        pending = self._pending_tree_ops
        if not pending:
            return self._filter
        assert isinstance(self._filter, PnnFilter)
        tree = self._filter.tree
        while pending:
            op, obj = pending[0]
            if op == "add":
                tree.insert(obj.mbr, obj)
            elif not tree.delete(obj.mbr, lambda item: item is obj):
                raise RuntimeError(
                    "index out of sync with object list: "
                    f"object {obj.key!r} was tracked but not indexed"
                )
            pending.pop(0)
        return self._filter

    def _queue_tree_op(self, op: str, obj) -> None:
        """Queue one deferred R-tree operation, with a bounded queue.

        Past ``max(4, N/300)`` pending operations a fresh STR bulk
        load beats the per-operation Guttman surgery anyway, so the
        queue is discarded and the filter just marked stale — keeping
        memory bounded no matter how long a batch-only update stream
        runs between single queries.
        """
        if self._filter_stale:
            return
        pending = self._pending_tree_ops
        pending.append((op, obj))
        if len(pending) > max(4, len(self._objects) // 300):
            pending.clear()
            self._filter_stale = True

    # ------------------------------------------------------------------
    # Maintenance hooks called by the registry's mutation primitives
    # ------------------------------------------------------------------

    def _maintain_insert(self, obj, was_empty: bool) -> None:
        if was_empty:
            self._build_filter()
        elif isinstance(self._filter, PnnFilter):
            self._queue_tree_op("add", obj)
        if self._batch_filter is not None:
            self._batch_filter.append(obj)

    def _maintain_remove(self, victim, index: int) -> None:
        if self._batch_filter is not None:
            self._batch_filter.remove_at(index)
            if not self._objects:
                self._batch_filter = None
        if isinstance(self._filter, PnnFilter):
            self._queue_tree_op("del", victim)
        if not self._objects:
            self._filter = None
            self._pending_tree_ops.clear()
            self._filter_stale = False

    def _maintain_replace(self, victim, obj, index: int) -> None:
        if self._batch_filter is not None:
            self._batch_filter.replace_at(index, obj)
        if isinstance(self._filter, PnnFilter):
            self._queue_tree_op("del", victim)
            self._queue_tree_op("add", obj)

    # ------------------------------------------------------------------
    # Serving the executors
    # ------------------------------------------------------------------

    def _ensure_batch_filter(self) -> BatchMbrFilter:
        """The vectorised MBR filter, built lazily on first use.

        Once built it is maintained incrementally by
        :meth:`~repro.core.engine.registry.ObjectRegistryMixin.insert` /
        ``remove`` (append / mask a coordinate row) rather than rebuilt
        from the object tuple.
        """
        if self._batch_filter is None:
            self._batch_filter = self._make_batch_filter()
        return self._batch_filter

    def _filter_batch(self, points: Sequence) -> list[FilterResult]:
        """Filter every point, in one vectorised pass when possible.

        R-tree engines filter over object MBRs, which is exactly what
        the tree's branch-and-bound computes, so the whole batch runs
        as one matrix sweep.  Linear-scan engines use per-object
        ``mindist``/``maxdist`` (which may be tighter than the MBR for
        2-D regions), so they keep the reference scan per point.
        """
        if isinstance(self._filter, PnnFilter):
            points = [p.q if isinstance(p, QuerySpec) else p for p in points]
            return self._ensure_batch_filter()(points)
        return [
            self._filter(p.q if isinstance(p, QuerySpec) else p) for p in points
        ]
