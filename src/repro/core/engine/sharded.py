"""Shard-parallel execution: STR spatial shards + pluggable executors.

:class:`ShardedEngine` serves the same typed façade as
:class:`~repro.core.engine.UncertainEngine` — ``execute`` /
``execute_batch`` / ``explain`` over C-PNN, k-NN, and range specs, and
the full :ref:`mutation contract <mutation-contract>` — while spreading
the work over ``n_shards`` spatial partitions, each **a full per-shard
engine** (its own ``BatchMbrFilter``, caches, and deferred R-tree
queue).  Answers, records, and bounds are **bit-identical** to a single
engine over the same object sequence; the property suite asserts it for
all three families, across interleaved update streams, and across every
executor backend.

How the fan-out stays exact (DESIGN.md §12):

1. **Partition rule.**  Objects are Sort-Tile-Recursive partitioned by
   MBR center (x-slabs, then y-tiles — the same tiling
   :mod:`repro.index.str_pack` uses to pack R-tree leaves), so each
   shard covers a compact tile of space and a query's candidates
   cluster on few shards.  Inserts route through the recorded tile
   cuts; when churn skews any shard past
   ``rebalance_threshold × (N / n_shards)`` the engine re-splits.

2. **Global ``f_min`` reconciliation.**  Per-shard MBR sweeps run
   concurrently, producing each shard's ``mindist``/``maxdist``
   columns.  Scattered into the global matrix, the pruning radii are
   *selections* over the same floats the single engine reduces —
   ``min`` for C-PNN, the k-th smallest ``maxdist`` for k-NN — so they
   are bit-identical under any column order, and the merged candidate
   sets (ascending global object order) equal the single engine's
   exactly.

3. **Lane-parallel verification.**  C-PNN probabilities couple every
   candidate of a query through one subregion table, so *per-shard*
   verification cannot reproduce the single-engine numbers.  Instead
   the reconciled queries fan out across execution *lanes* — each a
   private C-PNN executor (own distribution/table caches, deterministic
   query-point affinity via :func:`~repro.core.engine.lanes.lane_for`'s
   content hash, so repeated probes stay warm) running the exact
   single-engine pipeline on its slice of the batch.  Batch ≡ per-query
   loop is already a bit-level property of that pipeline, so any
   partition of the batch is too.

*Where* the work items run is the executor's business (DESIGN.md §13):
the engine plans each batch as serialized
:class:`~repro.core.engine.executors.base.SweepItem` /
:class:`~repro.core.engine.executors.base.PnnItem` work items — plain
data, never closures — and hands them to the backend the ``executor=``
knob selected: inline (``"serial"``), the shared thread pool
(``"thread"``), or a persistent spawn-based worker pool attached to a
shared-memory coordinate segment (``"process"``).  ``"auto"`` picks
per host (see
:func:`~repro.core.engine.executors.base.resolve_backend`).
:meth:`ShardedEngine.close` releases whatever the backend holds (also
used as a context manager).
"""

from __future__ import annotations

import os
import time
from typing import Hashable, Sequence

import numpy as np

from repro.core.batch import (
    BatchResult,
    DistributionCache,
    TableCache,
    point_key,
)
from repro.core.engine.config import EngineConfig
from repro.core.engine.executors import make_executor, resolve_backend
from repro.core.engine.executors.base import (
    ExecutionTimeout,
    PnnItem,
    SweepItem,
)
from repro.core.engine.executors.breaker import CircuitBreaker
from repro.core.engine.facade import QueryFacadeMixin, UncertainEngine
from repro.core.engine.knn import KnnExecutorMixin
from repro.core.engine.lanes import FanoutMbrFilter, Lane, lane_for
from repro.core.engine.partition import str_shard_split
from repro.core.engine.pnn import _result_sig
from repro.core.engine.ranges import RangeExecutorMixin
from repro.core.engine.registry import ObjectRegistryMixin
from repro.core.refinement import Refiner
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery, QueryPlan, QueryResult
from repro.index.filtering import filter_candidates, pnn_results_from_matrices

__all__ = ["ShardedEngine"]


class ShardedEngine(
    QueryFacadeMixin,
    ObjectRegistryMixin,
    KnnExecutorMixin,
    RangeExecutorMixin,
):
    """Shard-parallel :class:`~repro.core.engine.UncertainEngine` peer.

    Same façade, same results to the bit, work fanned out across
    ``n_shards`` STR spatial shards and ``max_workers`` execution lanes
    (see the module docstring for the three-stage argument).  Use it
    when batches are large enough for the per-query work to dominate
    the fan-out overhead — the ``benchmarks/test_sharded_parallel.py``
    gate demands ≥2× batch throughput on a 4-core machine.

    Parameters
    ----------
    objects:
        As for :class:`~repro.core.engine.UncertainEngine`; may be
        empty.
    config:
        Shared by every shard engine and every execution lane, so a
        single engine built from the same config answers identically.
    n_shards:
        Spatial partitions (default: one per core, capped at 8, at
        least 2).
    max_workers:
        Parallel width *and* execution-lane count (default:
        ``min(n_shards, cpu_count)``).  Under the process backend this
        is also the worker-pool size — one resident worker per lane.
    rebalance_threshold:
        Re-split when the fullest shard exceeds this multiple of the
        ideal ``N / n_shards`` occupancy (must be > 1).
    executor:
        Backend override (``"auto" | "serial" | "thread" | "process"``);
        beats ``config.executor`` when given.
    """

    def __init__(
        self,
        objects: Sequence,
        config: EngineConfig | None = None,
        *,
        n_shards: int | None = None,
        max_workers: int | None = None,
        rebalance_threshold: float = 4.0,
        executor: str | None = None,
    ) -> None:
        cpu = os.cpu_count() or 1
        if n_shards is None:
            n_shards = max(2, min(8, cpu))
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if max_workers is None:
            max_workers = max(1, min(n_shards, cpu))
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if not rebalance_threshold > 1.0:
            raise ValueError("rebalance_threshold must exceed 1")
        self._config = config or EngineConfig()
        self._n_shards = int(n_shards)
        self._max_workers = int(max_workers)
        self._rebalance_threshold = float(rebalance_threshold)
        self._backend = resolve_backend(
            self._config, parallel=True, override=executor
        )
        self._executor = make_executor(self._backend, self)
        #: Lazily built cache of every backend the breaker may route to
        #: (the configured one is pre-seeded so tests and callers can
        #: keep reaching ``self._executor`` directly).
        self._executors = {self._backend: self._executor}
        self._breaker = CircuitBreaker(
            self._backend,
            threshold=self._config.breaker_threshold,
            probe_after=self._config.breaker_probe_after,
        )
        self._fallback_items = 0
        self._cancel_scope = None
        self._init_registry(objects)
        self._init_chains()
        self._dim = self._objects[0].mbr.dim if self._objects else None
        #: Parent-level distribution cache serving the k-NN/range
        #: executors (the C-PNN lanes own theirs); the registry's
        #: mutation hooks evict from it like the single engine's.
        self._distribution_cache = (
            DistributionCache(self._config.distribution_cache_size)
            if self._config.distribution_cache_size
            else None
        )
        #: The parent keeps no table cache — C-PNN tables live in the
        #: lanes (query-point affinity); mutations queue invalidation
        #: boxes to every lane instead.
        self._table_cache: TableCache | None = None
        self._lanes = [
            Lane(self._config, self._max_workers) for _ in range(self._max_workers)
        ]
        self._fanout = FanoutMbrFilter(self)
        self._rebalances = 0
        self._last_parallel: dict = {}
        self._shards: list[UncertainEngine] = []
        self._owner: dict[Hashable, int] = {}
        self._router = None
        self._columns: list[np.ndarray] | None = None
        self._build_shards()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def executor(self) -> str:
        """The resolved backend name (``"auto"`` never survives here)."""
        return self._backend

    @property
    def shards(self) -> tuple:
        """The per-shard engines (full engines; read-only snapshot)."""
        return tuple(self._shards)

    def warm_executor(self) -> str:
        """Start whatever the backend keeps resident (the process
        backend's worker pool) before the first batch, so cold-batch
        measurements don't pay spawn+attach.  No-op for backends with
        nothing to pre-start; returns the backend name."""
        starter = getattr(self._executor, "ensure_started", None)
        if starter is not None:
            starter()
        return self._backend

    def _executor_for(self, name: str):
        """The executor instance for backend ``name``, built on first
        use (the circuit breaker may route a dispatch to a healthier
        backend than the configured one)."""
        executor = self._executors.get(name)
        if executor is None:
            executor = make_executor(name, self)
            self._executors[name] = executor
        return executor

    @staticmethod
    def _failure_fingerprint(executor) -> tuple:
        """Counters whose movement marks a dispatch unhealthy for the
        circuit breaker (absorbed worker deaths included: the answer
        was right, the pool wasn't)."""
        return (
            getattr(executor, "_failures", 0),
            getattr(executor, "_errors", 0),
            getattr(executor, "_shm_fallbacks", 0),
        )

    def close(self) -> None:
        """Release every backend's resources — thread pools, worker
        processes, shared-memory segments, and the shard engines' column
        stores (idempotent; engine stays usable — they are recreated on
        the next parallel call)."""
        for executor in self._executors.values():
            executor.close()
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        occupancy = [len(shard) for shard in self._shards]
        return (
            f"{type(self).__name__}(objects={len(self._objects)}, "
            f"n_shards={self._n_shards}, occupancy={occupancy}, "
            f"max_workers={self._max_workers}, executor={self._backend!r})"
        )

    # ------------------------------------------------------------------
    # Sharding: build, route, rebalance
    # ------------------------------------------------------------------

    def _build_shards(self) -> None:
        for shard in self._shards:
            shard.close()  # unlink any shard-owned column stores
        groups, router = str_shard_split(self._objects, self._n_shards)
        self._shards = [UncertainEngine(group, self._config) for group in groups]
        self._owner = {
            obj.key: sid for sid, group in enumerate(groups) for obj in group
        }
        self._router = router
        self._columns = None

    def _shard_columns(self) -> list[np.ndarray]:
        """Per shard, the global object-order positions of its rows.

        Rebuilt lazily after any mutation; shard-local row order always
        matches the shard engine's object list, so scattering a shard's
        matrix columns through this map reconstructs the global
        insertion-order matrix exactly.
        """
        if self._columns is None:
            position = {key: i for i, key in enumerate(self._key_list)}
            self._columns = [
                np.fromiter(
                    (position[obj.key] for obj in shard._objects),
                    dtype=np.intp,
                    count=len(shard._objects),
                )
                for shard in self._shards
            ]
        return self._columns

    def _maybe_rebalance(self) -> None:
        n = len(self._objects)
        if n < 2 * self._n_shards:
            return
        ideal = n / self._n_shards
        if max(len(shard) for shard in self._shards) > self._rebalance_threshold * ideal:
            self._rebalances += 1
            self._build_shards()

    # Maintenance hooks called by the registry's mutation primitives —
    # the global key bookkeeping and the mutation contract live there;
    # these route the index work to the owning shard, keep every lane's
    # caches exact, and log the op for backends with remote replicas.

    def _record_mutation(self, op) -> None:
        """Log one mutation to every live backend — a degraded engine
        may heal back onto a pool whose replicas must not have missed
        anything in between."""
        for executor in self._executors.values():
            executor.record_mutation(op)

    def _maintain_insert(self, obj, was_empty: bool) -> None:
        self._columns = None
        if was_empty or self._router is None:
            self._dim = obj.mbr.dim
            self._build_shards()
        else:
            sid = self._router(obj)
            self._shards[sid].insert(obj)
            self._owner[obj.key] = sid
            self._maybe_rebalance()
        for lane in self._lanes:
            lane._queue_invalidation(obj)
        self._record_mutation(("insert", obj))

    def _maintain_remove(self, victim, index: int) -> None:
        self._columns = None
        sid = self._owner.pop(victim.key)
        if not self._shards[sid].remove(victim.key):  # pragma: no cover - guard
            raise RuntimeError(
                "shard map out of sync with object list: "
                f"object {victim.key!r} was tracked but lives on no shard"
            )
        for lane in self._lanes:
            lane._queue_invalidation(victim)
            if lane._distribution_cache is not None:
                lane._distribution_cache.evict_object(victim)
        if not self._objects:
            self._router = None
            self._dim = None
            # Drained: reset the lanes' geometry-holding structures too
            # (the registry resets the parent's) — a refill may change
            # dimensionality (DESIGN.md §11).
            for lane in self._lanes:
                lane._pending_invalidation.clear()
                if lane._table_cache is not None:
                    lane._table_cache.clear()
        else:
            # Removals skew too: draining other tiles shrinks the
            # ideal occupancy under a shard that kept its objects.
            self._maybe_rebalance()
        self._record_mutation(("remove", victim.key))

    def _maintain_replace(self, victim, obj, index: int) -> None:
        self._columns = None
        old_sid = self._owner.pop(victim.key)
        new_sid = self._router(obj)
        if new_sid == old_sid:
            self._shards[old_sid].replace(victim.key, obj)
        else:
            # The report moved the object into another shard's tile.
            self._shards[old_sid].remove(victim.key)
            self._shards[new_sid].insert(obj)
        self._owner[obj.key] = new_sid
        for lane in self._lanes:
            lane._queue_invalidation(victim)
            lane._queue_invalidation(obj)
            if lane._distribution_cache is not None:
                lane._distribution_cache.evict_object(victim)
        self._maybe_rebalance()
        self._record_mutation(("replace", victim.key, obj))

    # ------------------------------------------------------------------
    # Stage 1: concurrent per-shard sweeps, global reconciliation
    # ------------------------------------------------------------------

    def _as_matrix(self, points: Sequence) -> np.ndarray:
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim == 1:
            if self._dim != 1:
                raise ValueError("query point dimensionality mismatch")
            matrix = matrix.reshape(-1, 1)
        if matrix.ndim != 2 or matrix.shape[1] != self._dim:
            raise ValueError("query point dimensionality mismatch")
        return matrix

    def _global_matrices(self, points: Sequence) -> tuple[np.ndarray, np.ndarray]:
        """MBR ``mindist``/``maxdist`` of every (query, object) pair,
        computed shard-concurrently and scattered into global order.

        Every cell is one shard filter's element-wise arithmetic —
        identical to a single whole-set filter's — so downstream
        reductions (row minima, k-th selections, comparisons) are
        bit-identical to the single-engine path.
        """
        queries = self._as_matrix(points)
        columns = self._shard_columns()
        b, n = queries.shape[0], len(self._objects)
        mindist = np.empty((b, n))
        maxdist = np.empty((b, n))
        items = [
            SweepItem(shard=sid, cols=cols)
            for sid, cols in enumerate(columns)
            if cols.size
        ]
        # Sweeps follow the breaker's current level passively (no
        # begin/record — health is judged on the C-PNN dispatches,
        # which exercise the pool far harder).
        self._executor_for(self._breaker.backend).run_sweeps(
            items, queries, mindist, maxdist
        )
        return mindist, maxdist

    def _run_sweep_item(self, item: SweepItem, queries: np.ndarray):
        """In-process execution of one sweep item (serial/thread
        backends, and the process backend's fallback path)."""
        return self._shards[item.shard]._ensure_batch_filter().matrices(queries)

    def _ensure_batch_filter(self) -> FanoutMbrFilter:
        """The k-NN/range executors' filter: the shard fan-out façade."""
        return self._fanout

    # ------------------------------------------------------------------
    # Stage 2: lane-parallel C-PNN execution
    # ------------------------------------------------------------------

    def _lane_for(self, q) -> int:
        return lane_for(q, len(self._lanes))

    def _execute_pnn(self, query: CPNNQuery, strategy: str) -> QueryResult:
        # Single C-PNN specs route through the batch path: the sharded
        # engine has no per-shard best-first traversal that could beat
        # one reconciled sweep, and the lane caches stay warm this way.
        return self._pnn_batch([query], strategy).results[0]

    def _pnn_batch(
        self, queries: list[CPNNQuery], strategy: str | None
    ) -> BatchResult:
        """Plan the batch as per-lane work items, then let the executor
        run them.

        Under the serial/thread backends, stage 1 runs the per-shard
        MBR sweeps concurrently and reduces them to global ``f_min``
        candidate sets (insertion order) staged on the parent lanes;
        stage 2 dispatches each query to its affinity lane, every lane
        running the unmodified single-engine C-PNN batch executor over
        its slice.  Under the process backend, the items instead ship
        to resident workers that filter against their own replicas —
        same arithmetic, same answers — and batches smaller than
        ``config.process_min_batch`` run inline on the parent lanes
        (a pipe round-trip isn't worth it).  Results scatter back into
        input order; counters and phase timings sum over lanes
        (wall-clock vs. summed lane time is reported through
        :meth:`stats` as the parallel speedup).
        """
        strategy = self._as_strategy(strategy)
        batch = BatchResult()
        if not queries:
            return batch
        wall_tick = time.perf_counter()
        assignments: dict[int, list[int]] = {}
        for i, query in enumerate(queries):
            assignments.setdefault(self._lane_for(query.q), []).append(i)
        items = [
            PnnItem(
                lane=lane_id,
                indices=tuple(indices),
                specs=tuple(queries[i] for i in indices),
                strategy=strategy,
            )
            for lane_id, indices in assignments.items()
        ]

        active = self._breaker.begin()
        executor = self._executor_for(active)
        before = self._failure_fingerprint(executor)
        remote = active == "process" and len(queries) >= max(
            1, self._config.process_min_batch
        )
        fell_back = False
        try:
            if remote:
                # Workers filter against their resident replicas; the
                # parent neither sweeps nor stages anything.
                outcomes = executor.run_pnn(items, None, None)
            else:
                staged, snapshot = self._stage_filter_results(queries, strategy)
                if active == "process":
                    # Below the dispatch floor: run on the parent lanes
                    # (exactly the serial backend's path) so unit-scale
                    # workloads never pay a spawn.
                    outcomes = [
                        self._run_pnn_item(item, staged, snapshot)
                        for item in items
                    ]
                else:
                    outcomes = executor.run_pnn(items, staged, snapshot)
        except ExecutionTimeout:
            # The caller's deadline, not the pool's health.
            self._breaker.abort()
            raise
        except Exception:
            # The backend itself blew up past its own recovery: answer
            # the batch wholly in-process (bit-identical path), and let
            # the breaker judge.
            fell_back = True
            self._fallback_items += len(items)
            outcomes = [self._run_pnn_item_local(item) for item in items]
        healthy = not fell_back and before == self._failure_fingerprint(executor)
        transition = self._breaker.record(healthy)
        if transition == "degraded" and active == "process":
            # Walking away from a sick pool: release its workers now
            # rather than keeping zombies resident while degraded.
            executor.close()

        slots: list[QueryResult | None] = [None] * len(queries)
        lane_seconds = 0.0
        for item, (sub, seconds) in zip(items, outcomes):
            lane_seconds += seconds
            for i, result in zip(item.indices, sub.results):
                slots[i] = result
            for phase in ("filtering", "initialization", "verification", "refinement"):
                setattr(
                    batch.timings,
                    phase,
                    getattr(batch.timings, phase) + getattr(sub.timings, phase),
                )
            batch.cache_hits += sub.cache_hits
            batch.cache_misses += sub.cache_misses
            batch.table_hits += sub.table_hits
            batch.table_misses += sub.table_misses
            batch.result_hits += sub.result_hits
            batch.replayed.extend(item.indices[j] for j in sub.replayed)
        batch.replayed.sort()
        batch.results = slots
        wall = time.perf_counter() - wall_tick
        if fell_back:
            ran_on = "serial"
        elif remote or active != "process":
            ran_on = active
        else:
            ran_on = "serial"
        self._last_parallel = {
            "specs": len(queries),
            "lanes_used": len(items),
            "backend": ran_on,
            "wall_s": wall,
            "lane_s": lane_seconds,
            "parallel_speedup": (lane_seconds / wall) if wall > 0 else 1.0,
        }
        if fell_back or not healthy:
            # Something failed under this batch (even though every
            # answer is exact): stamp the story on each result so a
            # caller holding only the QueryResult can see it.
            note = {
                "backend": ran_on,
                "configured": self._backend,
                "recovered_inline": fell_back,
                "breaker": self._breaker.snapshot()["state"],
            }
            for result in batch.results:
                result.diagnostics["executor"] = dict(note)
        return batch

    def _stage_filter_results(
        self, queries: list[CPNNQuery], strategy: str
    ) -> tuple[dict | None, list | None]:
        """Parent-side stage 1: reconciled filter results for the lanes.

        R-tree mode sweeps only the points the lanes cannot answer from
        their result-snapshot tier — a warm steady-state batch (the
        streaming scenario) replays wholesale and must not pay a B×N
        fan-out it then discards.  Peeking (no counter, no recency)
        keeps the lanes' own cache accounting identical to the single
        engine's; queued invalidations flush first so a stale snapshot
        can never suppress a needed sweep.  Linear-scan mode instead
        hands lanes the object snapshot — they replay the exact
        region-distance scan (DESIGN.md §3) over the global order.
        """
        if not self._config.use_rtree:
            return None, self._objects
        points = []
        seen: set = set()
        for query in queries:
            lane = self._lanes[self._lane_for(query.q)]
            lane._flush_table_invalidations()
            key = point_key(query.q)
            if key in seen:
                continue
            cache = lane._table_cache
            entry = cache.peek(key) if cache is not None else None
            if entry is None or entry.results.get(
                _result_sig(query, strategy)
            ) is None:
                seen.add(key)
                points.append(query.q)
        staged = (
            dict(zip(map(point_key, points), self._fanout(points)))
            if points
            else {}
        )
        return staged, None

    def _run_pnn_item(
        self, item: PnnItem, staged: dict | None, snapshot: list | None
    ) -> tuple[BatchResult, float]:
        """In-process execution of one C-PNN item on its parent lane
        (serial/thread backends and the process backend's small-batch
        path)."""
        lane = self._lanes[item.lane]
        lane._staged = staged
        lane._scan_objects = snapshot
        # Lanes run the single-engine pipeline, whose C-PNN loops poll
        # their own host's scope — hand them the parent's.
        lane._cancel_scope = getattr(self, "_cancel_scope", None)
        tick = time.perf_counter()
        try:
            sub = lane._pnn_batch(list(item.specs), item.strategy)
        finally:
            lane._staged = None
            lane._scan_objects = None
            lane._cancel_scope = None
        return sub, time.perf_counter() - tick

    def _run_pnn_item_local(self, item: PnnItem) -> tuple[BatchResult, float]:
        """Crash-recovery path: re-execute a dead worker's item wholly
        in-process, computing its own staged filter results serially
        (never back through the executor — the pool is the thing that
        just failed)."""
        if not self._config.use_rtree:
            return self._run_pnn_item(item, None, self._objects)
        points = [spec.q for spec in item.specs]
        queries = self._as_matrix(points)
        n = len(self._objects)
        mindist = np.empty((queries.shape[0], n))
        maxdist = np.empty((queries.shape[0], n))
        for sid, cols in enumerate(self._shard_columns()):
            if not cols.size:
                continue
            shard_min, shard_max = self._run_sweep_item(
                SweepItem(shard=sid, cols=cols), queries
            )
            mindist[:, cols] = shard_min
            maxdist[:, cols] = shard_max
        results = pnn_results_from_matrices(self._objects, mindist, maxdist)
        staged = dict(zip(map(point_key, points), results))
        return self._run_pnn_item(item, staged, None)

    def pnn(self, q) -> dict[Hashable, float]:
        """Exact PNN through the reconciled filter (see
        :meth:`UncertainEngine.pnn <repro.core.engine.pnn.PnnExecutorMixin.pnn>`)."""
        if not self._objects:
            raise ValueError("cannot query an empty engine (insert objects first)")
        if self._config.use_rtree:
            filter_result = self._fanout([q])[0]
        else:
            # Linear-scan engines filter with exact region distances,
            # which 2-D regions may bound tighter than the MBR sweep —
            # the single engine's candidate (and key) set must match.
            filter_result = filter_candidates(self._objects, q)
        distributions = [
            obj.distance_distribution(q) for obj in filter_result.candidates
        ]
        table = SubregionTable(
            distributions, grid_refinement=self._config.grid_refinement
        )
        refiner = Refiner(
            table,
            quadrature_margin=self._config.quadrature_margin,
            order=self._config.refinement_order,
        )
        probabilities = refiner.exact_all()
        return {
            key: float(p) for key, p in zip(table.keys, probabilities)
        }

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _executor_stats(self) -> dict:
        """The breaker-active backend's counters, normalised to one
        schema (missing counters read 0 — the serial backend cannot
        lose a worker), plus the engine-level failure story."""
        stats = dict(self._executor_for(self._breaker.backend).stats())
        for counter in self._EXECUTOR_COUNTERS:
            stats.setdefault(counter, 0)
        stats["configured"] = self._backend
        stats["inline_fallbacks"] = self._fallback_items
        stats["breaker"] = self._breaker.snapshot()
        return stats

    def _executor_diagnostics(self) -> dict:
        return self._executor_stats()

    def _storage_stats(self) -> dict:
        """The ``stats()["storage"]`` payload, aggregated over every
        shard engine's owned column stores (one store-backed
        :class:`~repro.index.filtering.BatchMbrFilter` per non-empty
        shard when ``config.storage != "ram"``)."""
        stats: dict = {
            "backend": self._config.storage,
            "stores": 0,
            "nbytes": 0,
            "logical_reads": 0,
            "page_faults": 0,
            "evictions": 0,
            "resident_bytes": 0,
        }
        for shard in self._shards:
            snapshot = shard._storage_stats()
            for key in (
                "stores",
                "nbytes",
                "logical_reads",
                "page_faults",
                "evictions",
                "resident_bytes",
            ):
                stats[key] += int(snapshot.get(key, 0))
        reads = stats["logical_reads"]
        stats["hit_rate"] = (
            1.0 - stats["page_faults"] / reads if reads else 1.0
        )
        return stats

    def _shard_stats(self) -> dict:
        occupancy = [len(shard) for shard in self._shards]
        n = len(self._objects)
        ideal = n / self._n_shards if self._n_shards else 0.0
        return {
            "n_shards": self._n_shards,
            "max_workers": self._max_workers,
            "occupancy": occupancy,
            "skew": (max(occupancy) / ideal) if n else 0.0,
            "rebalances": self._rebalances,
            "rebalance_threshold": self._rebalance_threshold,
            "parallel": dict(self._last_parallel),
        }

    def _cache_stats(self) -> dict:
        return {
            "distribution_cache": self._cache_summary(self._distribution_cache),
            "lanes": [
                {
                    "distribution_cache": self._cache_summary(
                        lane._distribution_cache
                    ),
                    "table_cache": self._cache_summary(lane._table_cache),
                }
                for lane in self._lanes
            ],
        }

    def stats(self) -> dict:
        """Sharded observability: the single-engine counters plus
        per-shard occupancy/skew, the last batch's parallel accounting
        (summed lane seconds / wall seconds), and the executor
        backend's own counters (pool liveness, worker failures)."""
        return {
            "engine": type(self).__name__,
            "objects": len(self._objects),
            "index": "sharded-rtree" if self._config.use_rtree else "sharded-linear",
            "pending_invalidations": sum(
                len(lane._pending_invalidation) for lane in self._lanes
            ),
            "caches": self._cache_stats(),
            "storage": self._storage_stats(),
            "continuous": self._continuous_stats(),
            "shards": self._shard_stats(),
            "executor": self._executor_stats(),
        }

    def _explain(self, spec, strategy: str | None = None) -> QueryPlan:
        """The sharded evaluation plan: the single-engine plan shape
        plus per-shard occupancy and parallel accounting in
        :attr:`~repro.core.types.QueryPlan.shards` (the façade's
        :meth:`~repro.core.engine.facade.QueryFacadeMixin.explain`
        wrapper stamps executor diagnostics on top)."""
        spec = self._as_spec(spec)
        for lane in self._lanes:
            lane._flush_table_invalidations()  # report live entry counts
        caches = self._cache_stats()
        shards = self._shard_stats()
        shards["executor"] = self._executor_stats()
        n = len(self._objects)
        family = self._family_of(spec)
        if not self._objects:
            return QueryPlan(
                spec=spec,
                family=family,
                strategy=None,
                index="none",
                stages=["empty engine: return an empty result"],
                caches=caches,
                shards=shards,
            )
        index = "sharded-rtree" if self._config.use_rtree else "sharded-linear"
        fan_out = (
            f"per-shard MBR sweeps across {self._n_shards} shards "
            f"({self._max_workers} workers, {self._backend} executor)"
        )
        if family == "cknn":
            counts = self._knn_plan_counts(spec, self._fanout)
            if counts is None:
                return QueryPlan(
                    spec=spec,
                    family=family,
                    strategy=None,
                    index=index,
                    stages=[
                        f"k={spec.k} covers all {n} objects: "
                        "every object qualifies with probability 1"
                    ],
                    candidates=n,
                    pruned=0,
                    fmin=float("inf"),
                    caches=caches,
                    shards=shards,
                )
            candidates, pruned, fmin_k = counts
            return QueryPlan(
                spec=spec,
                family=family,
                strategy=None,
                index=index,
                stages=[
                    fan_out,
                    f"global f_min^{min(spec.k, n)} reconciliation",
                    "distance distributions for survivors (LRU cache)",
                    "RS-style k-NN bounds via columnar cdf kernels",
                    "exact Poisson-binomial integration for undecided objects",
                ],
                candidates=candidates,
                pruned=pruned,
                fmin=fmin_k,
                caches=caches,
                shards=shards,
            )
        if family == "crange":
            sure_in, sure_out, straddle = self._range_plan_counts(
                spec, self._fanout
            )
            return QueryPlan(
                spec=spec,
                family=family,
                strategy=None,
                index=index,
                stages=[
                    fan_out,
                    "MBR range classification (merged sweep): "
                    f"{sure_in} certainly inside, {sure_out} certainly outside",
                    f"exact region-distance re-check for {straddle} straddling objects",
                    "cdf(radius) via columnar kernel for true straddlers (LRU cache)",
                ],
                candidates=straddle,
                pruned=sure_in + sure_out,
                fmin=float(spec.radius),
                caches=caches,
                shards=shards,
            )
        strategy = self._as_strategy(strategy)
        if self._config.use_rtree:
            filter_result = self._fanout([spec.q])[0]
        else:
            filter_result = filter_candidates(self._objects, spec.q)
        lane = self._lane_for(spec.q)
        verifiers, suffix = self._cpnn_plan_stages(spec, strategy)
        stages = [
            fan_out,
            "global f_min reconciliation → merged candidate set "
            "(insertion order)",
            f"lane {lane}/{len(self._lanes)} runs the single-engine "
            f"C-PNN pipeline ({strategy}, {self._backend} executor)",
        ] + suffix
        return QueryPlan(
            spec=spec,
            family=family,
            strategy=strategy,
            index=index,
            stages=stages,
            verifiers=verifiers,
            candidates=len(filter_result.candidates),
            pruned=n - len(filter_result.candidates),
            fmin=filter_result.fmin,
            caches=caches,
            shards=shards,
        )
