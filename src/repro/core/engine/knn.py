"""The k-NN executor: routed constrained probabilistic k-NN evaluation.

Evaluates :class:`~repro.core.types.CKNNQuery` specs through the
shared substrate — the host's batch MBR filter (``f_min^k`` pruning),
its LRU distribution cache, and the columnar bound/integration kernels
(:func:`repro.core.knn.knn_routed_eval`).  The host protocol is
``_objects``, ``_config``, ``_distribution_cache`` and
``_ensure_batch_filter`` — anything that serves those (a single
engine, or a sharded engine whose filter fans out across shards)
gets answers bit-identical to the scalar
:meth:`repro.core.knn.CKNNEngine.query` reference path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.batch import distributions_for
from repro.core.knn import knn_analytic_eval, knn_routed_eval
from repro.core.types import (
    AnswerRecord,
    CKNNQuery,
    Label,
    PhaseTimings,
    QueryResult,
)

__all__ = ["KnnExecutorMixin"]


class KnnExecutorMixin:
    """Routed k-NN evaluation (single + batch share this)."""

    def _knn_group(
        self, specs: list[CKNNQuery]
    ) -> tuple[list[QueryResult], float]:
        """Evaluate k-NN specs through the shared substrate.

        One vectorised ``f_min^k`` MBR sweep filters every spec's
        point; survivors' distance distributions go through the LRU
        cache and the columnar bound/integration kernels
        (:func:`~repro.core.knn.knn_routed_eval`).  Returns the results
        (answers bit-identical to the scalar
        :meth:`~repro.core.knn.CKNNEngine.query` path) and the shared
        filtering seconds.
        """
        n = len(self._objects)
        keys = [obj.key for obj in self._objects]
        cache = self._distribution_cache
        ks = [min(spec.k, n) for spec in specs]
        nontrivial = [i for i, spec in enumerate(specs) if spec.k < n]
        filter_seconds = 0.0
        filtered: dict[int, tuple[np.ndarray, float]] = {}
        if nontrivial:
            tick = time.perf_counter()
            swept = self._ensure_batch_filter().kth_filter(
                [specs[i].q for i in nontrivial], [ks[i] for i in nontrivial]
            )
            filter_seconds = time.perf_counter() - tick
            filtered = dict(zip(nontrivial, swept))
        results = []
        for b, (spec, k) in enumerate(zip(specs, ks)):
            timings = PhaseTimings()
            if spec.k >= n:
                # Every object is trivially among the k nearest — the
                # scalar path's early return, replicated before any
                # distribution is built.
                records = [
                    AnswerRecord(
                        key=key, label=Label.SATISFY, lower=1.0, upper=1.0, exact=1.0
                    )
                    for key in keys
                ]
                results.append(
                    QueryResult(
                        answers=tuple(keys),
                        records=records,
                        fmin=float("inf"),
                        timings=timings,
                        finished_after_verification=True,
                        spec=spec,
                    )
                )
                continue
            survivors, fmin_k = filtered[b]
            candidates = [self._objects[i] for i in survivors]
            if (
                self._config.parametric_fast_path
                and candidates
                and all(hasattr(obj, "parametric_distance") for obj in candidates)
            ):
                # The k-NN leg of the parametric fast path: when every
                # survivor has a closed-form distance law, one analytic
                # cdf sweep can settle the whole spec without building
                # a single histogram.  Undecided survivors fall through
                # to the standard (histogram-certified) pipeline below.
                tick = time.perf_counter()
                distances = [obj.parametric_distance(spec.q) for obj in candidates]
                settled = knn_analytic_eval(
                    distances, survivors, keys, k, spec.threshold, n
                )
                if settled is not None:
                    answers, records = settled
                    timings.verification = time.perf_counter() - tick
                    results.append(
                        QueryResult(
                            answers=answers,
                            records=records,
                            fmin=fmin_k,
                            timings=timings,
                            finished_after_verification=True,
                            refined_objects=0,
                            spec=spec,
                        )
                    )
                    continue
            hits_before = cache.hits if cache is not None else 0
            misses_before = cache.misses if cache is not None else 0
            tick = time.perf_counter()
            distributions = distributions_for(candidates, spec.q, cache)
            timings.initialization = time.perf_counter() - tick
            tick = time.perf_counter()
            answers, records, n_exact, exact_seconds = knn_routed_eval(
                distributions,
                survivors,
                keys,
                k,
                spec.threshold,
                n,
                quadrature_margin=self._config.quadrature_margin,
            )
            timings.verification = time.perf_counter() - tick - exact_seconds
            timings.refinement = exact_seconds
            results.append(
                QueryResult(
                    answers=answers,
                    records=records,
                    fmin=fmin_k,
                    timings=timings,
                    finished_after_verification=n_exact == 0,
                    refined_objects=n_exact,
                    spec=spec,
                    cache_hits=(cache.hits - hits_before) if cache is not None else 0,
                    cache_misses=(cache.misses - misses_before)
                    if cache is not None
                    else len(distributions),
                )
            )
        return results, filter_seconds
