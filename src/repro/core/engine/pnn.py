"""The C-PNN executor: filtering → initialisation → verify → refine.

Implements the paper's three evaluation strategies (Section V) for
C-PNN specs, single and batched, against a small host protocol —
``_config``, ``_chain_for``, ``_as_strategy``, ``_filter_batch``,
``_single_filter``, ``_distribution_cache``, ``_table_cache`` and
``_flush_table_invalidations`` — so the same executor serves the
single :class:`~repro.core.engine.UncertainEngine` *and* the execution
lanes of a :class:`~repro.core.engine.sharded.ShardedEngine` (which
feed it pre-reconciled cross-shard filter results).  Per-candidate
arithmetic is identical everywhere, which is what makes batch ≡
sequential ≡ sharded an exact, bit-level property (DESIGN.md §3, §12).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.core.batch import (
    BatchResult,
    CachedTable,
    distributions_for,
    point_key,
)
from repro.core.engine.config import Strategy
from repro.core.engine.executors.base import check_cancel
from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import (
    AnswerRecord,
    CPNNQuery,
    Label,
    PhaseTimings,
    QueryResult,
)
from repro.index.filtering import FilterResult
from repro.uncertainty.parametric.table import AnalyticTable

__all__ = ["PnnExecutorMixin"]

_UNKNOWN, _SATISFY, _FAIL = 0, 1, 2

_CODE_TO_LABEL = {_UNKNOWN: Label.UNKNOWN, _SATISFY: Label.SATISFY, _FAIL: Label.FAIL}


def _result_sig(query: CPNNQuery, strategy: str) -> tuple:
    """Memoisation key of a C-PNN outcome within one cached table.

    The pipeline's output is a deterministic function of the table
    (fixed per cache entry), the spec's type and constraints, the
    strategy, and the engine config (fixed per engine) — so this tuple
    identifies the result exactly.
    """
    return (strategy, type(query), query.threshold, query.tolerance)


def _replay_result(result: QueryResult) -> QueryResult:
    """A fresh :class:`QueryResult` replaying a memoised outcome.

    Copies the mutable containers *and* the (mutable)
    :class:`AnswerRecord` instances, so neither the stored snapshot nor
    any replayed result shares state with what a caller received — a
    caller mutating a record cannot corrupt later replays.  Timings are
    zero (nothing ran), matching the batch path's convention for
    shared phases.
    """
    return QueryResult(
        answers=result.answers,
        records=[
            AnswerRecord(
                key=r.key,
                label=r.label,
                lower=r.lower,
                upper=r.upper,
                exact=r.exact,
            )
            for r in result.records
        ],
        fmin=result.fmin,
        unknown_after_verifier=dict(result.unknown_after_verifier),
        finished_after_verification=result.finished_after_verification,
        refined_objects=result.refined_objects,
    )


@dataclass
class _Prepared:
    """Everything shared by the post-filter phases of one query."""

    filter_result: FilterResult
    table: SubregionTable
    states: CandidateStates
    refiner: Refiner
    timings: PhaseTimings = field(default_factory=PhaseTimings)


class PnnExecutorMixin:
    """C-PNN evaluation (single + batch) against the host protocol."""

    def _execute_pnn(self, query: CPNNQuery, strategy: str) -> QueryResult:
        filter_result = None
        filter_time = 0.0
        if strategy == Strategy.VR and self._config.parametric_fast_path:
            tick = time.perf_counter()
            filter_result = self._single_filter()(query.q)
            filter_time = time.perf_counter() - tick
            result = self._run_parametric(filter_result, query, filter_time)
            if result is not None:
                return result
        prepared = self._prepare(query, filter_result, filter_time)
        if strategy == Strategy.BASIC:
            return self._run_basic(prepared, query)
        if strategy == Strategy.REFINE:
            return self._run_refine(prepared, query)
        return self._run_vr(prepared, query)

    def _run_parametric(
        self, filter_result: FilterResult, query: CPNNQuery, filter_time: float
    ) -> QueryResult | None:
        """Verify on an analytic table — no histogram materialisation.

        Returns ``None`` when the fast path does not apply (some
        candidate has no closed form) or cannot settle every candidate
        within ``analytic_max_grid``; the caller then reruns the
        standard histogram pipeline from *fresh* states, so fallback
        answers are bit-identical to the histogram engine's.
        """
        candidates = filter_result.candidates
        if not candidates or not all(
            hasattr(obj, "parametric_distance") for obj in candidates
        ):
            return None
        timings = PhaseTimings(filtering=filter_time)
        tick = time.perf_counter()
        distances = [obj.parametric_distance(query.q) for obj in candidates]
        try:
            table = AnalyticTable(distances, grid=self._config.analytic_grid)
        except ValueError:
            return None
        states = CandidateStates(table.keys, pad=self._config.bound_pad)
        timings.initialization = time.perf_counter() - tick

        chain = self._chain_for(type(query))
        unknown_after: dict[str, float] = {}
        tick = time.perf_counter()
        while True:
            outcome = chain.run(table, states, query)
            unknown_after.update(outcome.unknown_after)
            if states.n_unknown == 0:
                break
            next_grid = table.grid * 4
            if next_grid > self._config.analytic_max_grid:
                timings.verification += time.perf_counter() - tick
                return None
            # Same states across escalations: every certified bound
            # already recorded is valid for the exact model, so the
            # finer table's brackets only tighten the intersection.
            table = table.refined(next_grid)
        timings.verification += time.perf_counter() - tick
        return self._build_result(
            table.keys,
            states,
            filter_result.fmin,
            timings,
            unknown_after=unknown_after,
            finished_after_verification=True,
            refined=0,
        )

    def _pnn_batch(
        self, queries: list[CPNNQuery], strategy: str | None
    ) -> BatchResult:
        """One amortised pass over many C-PNN queries.

        The phases are restructured around the batch (see
        :mod:`repro.core.batch`): filtering is a single vectorised MBR
        sweep, distance distributions go through the engine's LRU
        cache, and the VR verifier chain runs as flat sweeps over the
        whole candidate×query matrix.  Per-candidate arithmetic is
        shared with the single-query path, so answers agree exactly.

        Repeated probes short-circuit in two tiers (DESIGN.md §11):
        a memoised *result* snapshot replays the whole pipeline's
        outcome for an undisturbed (point, strategy, constraints)
        triple, and a cached *table* skips filtering/initialisation
        when only the constraints changed.  Both tiers are exact —
        entries survive dynamic updates only while their candidate set
        provably cannot have changed.
        """
        strategy = self._as_strategy(strategy)
        batch = BatchResult()
        if not queries:
            return batch
        cache = self._distribution_cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        timings = batch.timings

        tick = time.perf_counter()
        self._flush_table_invalidations()
        table_cache = self._table_cache
        all_queries = queries
        slots: list[QueryResult | None] = [None] * len(all_queries)
        entries: dict[int, CachedTable] = {}
        live: list[int] = []
        if table_cache is not None:
            for b, query in enumerate(all_queries):
                entry = table_cache.get(point_key(query.q))
                if entry is not None:
                    entries[b] = entry
                    snapshot = entry.results.get(_result_sig(query, strategy))
                    if snapshot is not None:
                        slots[b] = _replay_result(snapshot)
                        batch.table_hits += 1
                        batch.result_hits += 1
                        batch.replayed.append(b)
                        continue
                live.append(b)
        else:
            live = list(range(len(all_queries)))
        queries = [all_queries[b] for b in live]
        filter_results = (
            self._filter_batch([q.q for q in queries]) if queries else []
        )
        timings.filtering = time.perf_counter() - tick
        if not queries:
            # Every spec replayed a memoised snapshot; nothing to run.
            batch.results = slots
            for result, query in zip(slots, all_queries):
                result.spec = query
            return batch

        if strategy == Strategy.VR and self._config.parametric_fast_path:
            # Queries whose candidates all evaluate in closed form are
            # answered analytically right here, skipping table build,
            # caching, and snapshot memoisation (re-running the fast
            # path is cheaper than pinning a materialised table).
            # Queries with a warm cached table keep the standard flow.
            keep = []
            for i, b in enumerate(live):
                if entries.get(b) is None:
                    check_cancel(self)
                    result = self._run_parametric(
                        filter_results[i], queries[i], 0.0
                    )
                    if result is not None:
                        slots[b] = result
                        timings.initialization += result.timings.initialization
                        timings.verification += result.timings.verification
                        continue
                keep.append(i)
            if len(keep) < len(live):
                live = [live[i] for i in keep]
                queries = [queries[i] for i in keep]
                filter_results = [filter_results[i] for i in keep]
            if not queries:
                batch.results = slots
                for result, query in zip(slots, all_queries):
                    result.spec = query
                if cache is not None:
                    batch.cache_hits = cache.hits - hits_before
                    batch.cache_misses = cache.misses - misses_before
                return batch

        tick = time.perf_counter()
        tables = []
        distributions_built = 0
        built_this_batch: dict[Hashable, CachedTable] = {}
        for b, query, fr in zip(live, queries, filter_results):
            check_cancel(self)
            key = point_key(query.q)
            entry = entries.get(b)
            if entry is None:
                # A duplicate point earlier in this batch may have just
                # built this table; a plain dict probe avoids counting
                # a second miss against the cache for the same point.
                entry = built_this_batch.get(key)
                if entry is not None:
                    entries[b] = entry
            if entry is not None:
                table = entry.table
                batch.table_hits += 1
            else:
                table = SubregionTable(
                    distributions_for(fr.candidates, query.q, cache),
                    grid_refinement=self._config.grid_refinement,
                )
                distributions_built += table.size
                batch.table_misses += 1
                if table_cache is not None:
                    entry = CachedTable(table=table, fmin=fr.fmin)
                    table_cache.put(key, entry)
                    entries[b] = entry
                    built_this_batch[key] = entry
            tables.append(table)
        # Phase times accumulate (+=): the parametric pre-pass above may
        # already have booked its share for fast-path queries.
        offsets = np.zeros(len(tables) + 1, dtype=np.intp)
        np.cumsum([table.size for table in tables], out=offsets[1:])
        total = int(offsets[-1])
        pad = self._config.bound_pad
        flat_lower = np.zeros(total)
        flat_upper = np.ones(total)
        flat_labels = np.zeros(total, dtype=np.int8)
        flat_states = CandidateStates.from_arrays(
            [key for table in tables for key in table.keys],
            flat_lower,
            flat_upper,
            flat_labels,
            pad=pad,
        )
        prepared = []
        for b, (table, fr) in enumerate(zip(tables, filter_results)):
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            states = CandidateStates.from_arrays(
                table.keys,
                flat_lower[lo:hi],
                flat_upper[lo:hi],
                flat_labels[lo:hi],
                pad=pad,
            )
            refiner = Refiner(
                table,
                quadrature_margin=self._config.quadrature_margin,
                order=self._config.refinement_order,
            )
            prepared.append(_Prepared(fr, table, states, refiner))
        timings.initialization += time.perf_counter() - tick

        if strategy == Strategy.VR:
            # The flat sweep classifies the whole batch against one
            # threshold/tolerance pair and one verifier chain.  Specs
            # with heterogeneous constraints — or different PNN-family
            # spec types, whose chains may differ through the pipeline
            # hook — keep working through the sequential chain, query
            # by query, so batch == loop holds per spec.
            uniform = all(
                q.threshold == queries[0].threshold
                and q.tolerance == queries[0].tolerance
                and type(q) is type(queries[0])
                for q in queries[1:]
            )
            tick = time.perf_counter()
            if uniform:
                outcomes = self._chain_for(type(queries[0])).run_batch(
                    tables,
                    flat_states,
                    offsets,
                    queries[0].threshold,
                    queries[0].tolerance,
                )
            else:
                outcomes = [
                    self._chain_for(type(query)).run(table, prep.states, query)
                    for table, prep, query in zip(tables, prepared, queries)
                ]
            timings.verification += time.perf_counter() - tick

            tick = time.perf_counter()
            for b, prep, query, outcome in zip(live, prepared, queries, outcomes):
                check_cancel(self)
                states = prep.states
                finished = states.n_unknown == 0
                survivors = states.unknown_indices()
                prep.refiner.refine_objects(
                    survivors, states, query, use_verifier_slices=True
                )
                refined = int(survivors.size)
                slots[b] = self._assemble(
                    prep,
                    query,
                    unknown_after=outcome.unknown_after,
                    finished_after_verification=finished,
                    refined=refined,
                )
            timings.refinement = time.perf_counter() - tick
        else:
            runner = (
                self._run_basic if strategy == Strategy.BASIC else self._run_refine
            )
            for b, prep, query in zip(live, prepared, queries):
                check_cancel(self)
                slots[b] = runner(prep, query)
            timings.refinement = sum(
                slots[b].timings.refinement for b in live
            )

        # Memoise freshly computed outcomes as pristine snapshots so a
        # repeated probe of an undisturbed point replays them wholesale.
        for b, query in zip(live, queries):
            entry = entries.get(b)
            if entry is not None:
                entry.results[_result_sig(query, strategy)] = _replay_result(
                    slots[b]
                )
        batch.results = slots
        for result, query in zip(batch.results, all_queries):
            result.spec = query
        if cache is not None:
            batch.cache_hits = cache.hits - hits_before
            batch.cache_misses = cache.misses - misses_before
        else:
            batch.cache_misses = distributions_built
        return batch

    def pnn(self, q) -> dict[Hashable, float]:
        """Exact PNN: qualification probability of every candidate.

        Objects pruned by filtering have probability 0 and are omitted,
        matching the paper's PNN semantics of returning only non-zero
        probabilities.
        """
        if not self._objects:
            raise ValueError("cannot query an empty engine (insert objects first)")
        query = CPNNQuery(q, threshold=1.0, tolerance=0.0)
        prepared = self._prepare(query)
        probabilities = prepared.refiner.exact_all()
        return {
            key: float(p)
            for key, p in zip(prepared.table.keys, probabilities)
        }

    # ------------------------------------------------------------------
    # C-PNN phases
    # ------------------------------------------------------------------

    def _prepare(
        self,
        query: CPNNQuery,
        filter_result: FilterResult | None = None,
        filter_time: float = 0.0,
    ) -> _Prepared:
        timings = PhaseTimings(filtering=filter_time)
        if filter_result is None:
            tick = time.perf_counter()
            filter_result = self._single_filter()(query.q)
            timings.filtering = time.perf_counter() - tick

        tick = time.perf_counter()
        distributions = [
            obj.distance_distribution(query.q) for obj in filter_result.candidates
        ]
        table = SubregionTable(
            distributions, grid_refinement=self._config.grid_refinement
        )
        states = CandidateStates(table.keys, pad=self._config.bound_pad)
        refiner = Refiner(
            table,
            quadrature_margin=self._config.quadrature_margin,
            order=self._config.refinement_order,
        )
        timings.initialization = time.perf_counter() - tick
        return _Prepared(filter_result, table, states, refiner, timings)

    def _run_basic(self, prepared: _Prepared, query: CPNNQuery) -> QueryResult:
        timings = prepared.timings
        tick = time.perf_counter()
        probabilities = prepared.refiner.exact_all()
        states = prepared.states
        for i, p in enumerate(probabilities):
            states.set_exact(i, float(p))
            states.labels[i] = _SATISFY if p >= query.threshold else _FAIL
        timings.refinement = time.perf_counter() - tick
        return self._assemble(
            prepared,
            query,
            unknown_after={},
            finished_after_verification=False,
            refined=prepared.table.size,
            exact=probabilities,
        )

    def _run_refine(self, prepared: _Prepared, query: CPNNQuery) -> QueryResult:
        timings = prepared.timings
        states = prepared.states
        tick = time.perf_counter()
        refined = 0
        for i in range(prepared.table.size):
            if states.labels[i] == _UNKNOWN:
                prepared.refiner.refine_object(
                    i, states, query, use_verifier_slices=False
                )
                refined += 1
        timings.refinement = time.perf_counter() - tick
        return self._assemble(
            prepared,
            query,
            unknown_after={},
            finished_after_verification=False,
            refined=refined,
        )

    def _run_vr(self, prepared: _Prepared, query: CPNNQuery) -> QueryResult:
        timings = prepared.timings
        states = prepared.states
        chain = self._chain_for(type(query))

        tick = time.perf_counter()
        outcome = chain.run(prepared.table, states, query)
        timings.verification = time.perf_counter() - tick

        finished = states.n_unknown == 0
        tick = time.perf_counter()
        refined = 0
        for i in states.unknown_indices():
            prepared.refiner.refine_object(
                int(i), states, query, use_verifier_slices=True
            )
            refined += 1
        timings.refinement = time.perf_counter() - tick
        return self._assemble(
            prepared,
            query,
            unknown_after=outcome.unknown_after,
            finished_after_verification=finished,
            refined=refined,
        )

    # ------------------------------------------------------------------

    def _assemble(
        self,
        prepared: _Prepared,
        query: CPNNQuery,
        unknown_after: dict[str, float],
        finished_after_verification: bool,
        refined: int,
        exact: np.ndarray | None = None,
    ) -> QueryResult:
        return self._build_result(
            prepared.table.keys,
            prepared.states,
            prepared.filter_result.fmin,
            prepared.timings,
            unknown_after=unknown_after,
            finished_after_verification=finished_after_verification,
            refined=refined,
            exact=exact,
        )

    def _build_result(
        self,
        keys,
        states: CandidateStates,
        fmin: float,
        timings: PhaseTimings,
        unknown_after: dict[str, float],
        finished_after_verification: bool,
        refined: int,
        exact: np.ndarray | None = None,
    ) -> QueryResult:
        """Assemble a :class:`QueryResult` from final candidate states —
        shared by the histogram pipeline (via :meth:`_assemble`) and the
        table-less parametric fast path."""
        records = []
        answers = []
        for i, key in enumerate(keys):
            label = _CODE_TO_LABEL[int(states.labels[i])]
            exact_p = float(exact[i]) if exact is not None else None
            if exact_p is None and states.upper[i] - states.lower[i] <= 3 * states.pad:
                exact_p = 0.5 * (states.upper[i] + states.lower[i])
            records.append(
                AnswerRecord(
                    key=key,
                    label=label,
                    lower=float(states.lower[i]),
                    upper=float(states.upper[i]),
                    exact=exact_p,
                )
            )
            if label is Label.SATISFY:
                answers.append(key)
        return QueryResult(
            answers=tuple(answers),
            records=records,
            fmin=fmin,
            timings=timings,
            unknown_after_verifier=dict(unknown_after),
            finished_after_verification=finished_after_verification,
            refined_objects=refined,
        )
