"""Execution lanes and the shard fan-out filter façade.

The two pieces :class:`~repro.core.engine.sharded.ShardedEngine` puts
on either side of its global ``f_min`` reconciliation (DESIGN.md §12):

* :class:`FanoutMbrFilter` — the *upstream* side: presents the
  :class:`~repro.index.filtering.BatchMbrFilter` surface over matrices
  assembled from concurrent per-shard sweeps;
* :class:`Lane` — the *downstream* side: a private C-PNN executor (own
  distribution/table caches, deterministic query-point affinity) that
  runs the unmodified single-engine batch pipeline over its slice of a
  batch, against the reconciled filter results the parent staged.

Lanes never share mutable state with each other, so the fan-out needs
no locks; everything they read concurrently (config, staged filter
results, the object snapshot) is frozen for the duration of a dispatch.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

from repro.core.batch import DistributionCache, TableCache, point_key
from repro.core.engine.config import EngineConfig
from repro.core.engine.dispatch import SpecDispatchMixin
from repro.core.engine.pnn import PnnExecutorMixin
from repro.core.engine.registry import InvalidationQueueMixin
from repro.index.filtering import (
    filter_candidates,
    kth_from_matrices,
    pnn_results_from_matrices,
)

__all__ = ["FanoutMbrFilter", "Lane", "lane_for"]


def lane_for(q, n_lanes: int) -> int:
    """Deterministic lane affinity for a query point: a *content* hash.

    CRC-32 over the point's coordinates packed as little-endian IEEE
    doubles — a pure function of the coordinate bytes, so the mapping
    is identical in every interpreter, on every platform, and across
    process boundaries.  The builtin ``hash`` the previous affinity
    used is unsuitable under the process executor: it varies across
    interpreters under hash randomization (``PYTHONHASHSEED``), which
    would silently re-deal points to different lanes between runs and
    between parent and spawned workers, defeating per-lane cache
    affinity.  CRC-32's bit mixing also spreads regular whole-number
    query grids (0.0, 3.0, 6.0, …) that a naive modulo would alias
    onto few lanes.

    Any assignment is *correct* — lanes run the identical pipeline —
    so this is purely a cache-affinity and determinism contract
    (regression-tested across two spawned interpreters).
    """
    key = point_key(q)
    if isinstance(key, tuple):
        data = struct.pack(f"<{len(key)}d", *key)
    else:
        data = struct.pack("<d", key)
    return zlib.crc32(data) % n_lanes


class Lane(SpecDispatchMixin, InvalidationQueueMixin, PnnExecutorMixin):
    """One C-PNN execution lane of a sharded engine.

    Runs the *unmodified* single-engine C-PNN batch pipeline
    (:class:`~repro.core.engine.pnn.PnnExecutorMixin`) over its slice
    of a batch, against filter results the parent reconciled across
    shards (thread/serial executors) or against its own resident
    filter (process-executor workers).  Each lane owns its caches and
    serves a deterministic subset of query points (:func:`lane_for`'s
    content hash), so lanes never share mutable state — and repeated
    probes of a point always land on its warm lane, preserving the
    table-cache/result-snapshot replay tiers of DESIGN.md §11 under
    parallel execution.
    """

    def __init__(self, config: EngineConfig, n_lanes: int) -> None:
        self._config = config
        self._init_chains()
        self._init_invalidation_queue()
        # Each lane gets its share of the configured capacities: the
        # lane population partitions the query points, so the per-point
        # working set splits the same way.
        size = config.distribution_cache_size
        self._distribution_cache = (
            DistributionCache(max(1, size // n_lanes)) if size else None
        )
        table_size = config.table_cache_size
        self._table_cache = (
            TableCache(max(1, table_size // n_lanes)) if table_size else None
        )
        #: Per-dispatch filter lookup staged by the parent: point key →
        #: reconciled FilterResult (R-tree mode), or ``None`` with
        #: ``_scan_objects`` set (linear mode).
        self._staged: dict | None = None
        self._scan_objects: list | None = None
        #: Resident filter callable for process-executor workers: the
        #: worker owns a full BatchMbrFilter (attached from the shared
        #: coordinate segment) and the lane filters its own slice
        #: instead of reading parent-staged results (DESIGN.md §13).
        #: A callable (not the filter itself) so the worker can swap
        #: the underlying filter across mutations.
        self._local_filter = None

    def _filter_batch(self, points: Sequence) -> list:
        staged = self._staged
        if staged is not None:
            return [staged[point_key(p)] for p in points]
        if self._local_filter is not None:
            return self._local_filter(points)
        return [filter_candidates(self._scan_objects, p) for p in points]


class FanoutMbrFilter:
    """Batch-MBR-filter façade over a sharded engine's shards.

    Presents the :class:`~repro.index.filtering.BatchMbrFilter` surface
    the k-NN/range executors consume (``matrices`` / ``kth_filter`` /
    ``__call__``), implemented as a concurrent per-shard sweep scattered
    into global ``(B, N)`` matrices — values bit-identical to a single
    filter over the whole object sequence, because every matrix cell is
    the same element-wise arithmetic regardless of which shard computes
    it, and every downstream reduction is a selection (row ``min``,
    k-th smallest) that no column order can change.
    """

    def __init__(self, parent) -> None:
        self._parent = parent

    def matrices(self, points: Sequence):
        return self._parent._global_matrices(points)

    def kth_filter(self, points: Sequence, ks: Sequence[int]):
        mindist, maxdist = self.matrices(points)
        return kth_from_matrices(mindist, maxdist, ks)

    def __call__(self, points: Sequence):
        mindist, maxdist = self.matrices(points)
        return pnn_results_from_matrices(self._parent._objects, mindist, maxdist)
