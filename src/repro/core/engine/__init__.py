"""The unified query engine, decomposed into a staged-pipeline package.

The paper's framework (Section III) is one pipeline — filtering →
initialisation → verification → refinement — and this package serves
all three query families through it behind a single typed surface.
What used to be one 1,500-line ``engine.py`` module is now one module
per responsibility:

==================  ====================================================
module              owns
==================  ====================================================
:mod:`.config`      :class:`EngineConfig` and the :class:`Strategy` names
:mod:`.dispatch`    spec normalisation + per-spec-type verifier chains
:mod:`.registry`    object storage, key bookkeeping, the **mutation
                    contract** (insert/remove/replace), and the deferred
                    table-cache invalidation queue
:mod:`.filtering`   the single-query R-tree (deferred op queue) and the
                    incrementally maintained whole-batch MBR filter
:mod:`.pnn`         the C-PNN executor (Basic / Refine / VR, single +
                    batch, table cache + result snapshots)
:mod:`.knn`         the routed constrained k-NN executor
:mod:`.ranges`      the routed constrained range executor
:mod:`.facade`      :class:`UncertainEngine` — the thin coordinator that
                    routes specs and owns config/caches — plus the
                    legacy :class:`CPNNEngine` shim
:mod:`.sharded`     :class:`ShardedEngine` — spatial shards planning
                    batches as serialized work items (DESIGN.md §12)
:mod:`.executors`   the pluggable execution backends the sharded engine
                    hands its work items to — serial / thread / process
                    (DESIGN.md §13)
==================  ====================================================

Every public name keeps its historical import path
(``from repro.core.engine import UncertainEngine, EngineConfig, ...``),
and the decomposition is behaviour-preserving to the bit: the property
suites assert batch ≡ sequential ≡ sharded for all three spec
families.
"""

from repro.core.engine.config import EngineConfig, Strategy
from repro.core.engine.facade import CPNNEngine, UncertainEngine
from repro.core.engine.sharded import ShardedEngine

__all__ = [
    "CPNNEngine",
    "EngineConfig",
    "ShardedEngine",
    "Strategy",
    "UncertainEngine",
]
