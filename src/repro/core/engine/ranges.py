"""The range executor: routed constrained probabilistic range queries.

Evaluates :class:`~repro.core.types.CRangeQuery` specs through the
shared substrate against the same host protocol as the k-NN executor
(``_objects``, ``_distribution_cache``, ``_ensure_batch_filter``);
answers are bit-identical to the scalar
:func:`repro.core.range_query.constrained_range_query` reference.
"""

from __future__ import annotations

import time

from repro.core.batch import distributions_for
from repro.core.range_query import range_routed_eval
from repro.core.types import CRangeQuery, PhaseTimings, QueryResult

__all__ = ["RangeExecutorMixin"]


class RangeExecutorMixin:
    """Routed range evaluation (single + batch share this)."""

    def _range_group(
        self, specs: list[CRangeQuery]
    ) -> tuple[list[QueryResult], float]:
        """Evaluate range specs through the shared substrate.

        One vectorised MBR distance sweep classifies every (spec,
        object) pair; only straddling objects re-check exact region
        distances, and only true straddlers build distributions (LRU
        cache) and evaluate ``cdf(radius)`` through the columnar kernel
        (:func:`~repro.core.range_query.range_routed_eval`).  Answers
        are bit-identical to the scalar
        :func:`~repro.core.range_query.constrained_range_query`.
        """
        cache = self._distribution_cache
        tick = time.perf_counter()
        mindist, maxdist = self._ensure_batch_filter().matrices(
            [spec.q for spec in specs]
        )
        filter_seconds = time.perf_counter() - tick
        results = []
        for b, spec in enumerate(specs):
            timings = PhaseTimings()
            hits_before = cache.hits if cache is not None else 0
            misses_before = cache.misses if cache is not None else 0
            tick = time.perf_counter()
            built: list[int] = []
            build_seconds = [0.0]

            def provider(objs, _q=spec.q, _built=built, _secs=build_seconds):
                inner = time.perf_counter()
                if self._config.parametric_fast_path and all(
                    hasattr(obj, "parametric_distance") for obj in objs
                ):
                    # The range leg of the parametric fast path: hand
                    # the kernel closed-form distance laws — cdf(radius)
                    # evaluates analytically, no histograms, no cache
                    # traffic.  Mixed candidate sets keep the histogram
                    # route (all-or-nothing, like the C-PNN fast path).
                    distributions = [obj.parametric_distance(_q) for obj in objs]
                else:
                    distributions = distributions_for(objs, _q, cache)
                    _built.append(len(objs))
                _secs[0] += time.perf_counter() - inner
                return distributions

            answers, records, n_evaluated = range_routed_eval(
                self._objects,
                spec.q,
                spec.radius,
                spec.threshold,
                mindist[b],
                maxdist[b],
                provider,
            )
            elapsed = time.perf_counter() - tick
            timings.initialization = build_seconds[0]
            timings.verification = elapsed - build_seconds[0]
            results.append(
                QueryResult(
                    answers=answers,
                    records=records,
                    fmin=float(spec.radius),
                    timings=timings,
                    finished_after_verification=n_evaluated == 0,
                    refined_objects=n_evaluated,
                    spec=spec,
                    cache_hits=(cache.hits - hits_before) if cache is not None else 0,
                    cache_misses=(cache.misses - misses_before)
                    if cache is not None
                    else sum(built),
                )
            )
        return results, filter_seconds
