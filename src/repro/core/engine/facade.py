"""The engine coordinator: spec routing, caches, and legacy shims.

:class:`UncertainEngine` is deliberately thin — it assembles the
focused stage modules (object registry, filter stage, one executor per
spec family) and owns only what they share: the
:class:`~repro.core.engine.config.EngineConfig` and the two LRU caches.
``execute``/``execute_batch``/``explain`` do nothing but dispatch on
the spec type and merge the executors' outputs; all evaluation lives in
:mod:`~repro.core.engine.pnn`, :mod:`~repro.core.engine.knn` and
:mod:`~repro.core.engine.ranges`, all storage and mutation semantics in
:mod:`~repro.core.engine.registry`, and all index upkeep in
:mod:`~repro.core.engine.filtering`.

The pre-façade entry points — :meth:`UncertainEngine.query`,
:meth:`UncertainEngine.query_batch`, and the :class:`CPNNEngine` name —
remain as thin deprecation shims (DESIGN.md §7).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Sequence

import numpy as np

from repro.core.batch import BatchResult, DistributionCache, TableCache
from repro.core.engine.config import EngineConfig, Strategy
from repro.core.engine.dispatch import SpecDispatchMixin
from repro.core.engine.executors.base import CancelScope
from repro.core.engine.filtering import FilterStageMixin
from repro.core.engine.knn import KnnExecutorMixin
from repro.core.engine.pnn import PnnExecutorMixin
from repro.core.engine.ranges import RangeExecutorMixin
from repro.core.engine.registry import ObjectRegistryMixin
from repro.core.types import (
    CKNNQuery,
    CRangeQuery,
    QueryPlan,
    QueryResult,
)
from repro.index.filtering import PnnFilter

__all__ = ["CPNNEngine", "QueryFacadeMixin", "UncertainEngine"]


class QueryFacadeMixin(SpecDispatchMixin):
    """The unified ``execute`` / ``execute_batch`` surface.

    Pure routing: dispatch on the spec type, delegate to the host's
    family executors (``_execute_pnn`` / ``_pnn_batch`` /
    ``_knn_group`` / ``_range_group``), merge timings and counters.
    Shared verbatim by :class:`UncertainEngine` and
    :class:`~repro.core.engine.sharded.ShardedEngine`, which is how the
    two stay behaviourally interchangeable.
    """

    #: No active deadline by default; ``deadline()`` swaps a scope in.
    _cancel_scope: CancelScope | None = None

    #: The attached continuous-query tier, if any — a
    #: :class:`~repro.continuous.monitor.ContinuousMonitor` installs
    #: itself here so ``stats()["continuous"]`` and ``explain()``
    #: report registered/invalidated/replayed counts and the
    #: safe-region hit rate (DESIGN.md §17).
    _continuous = None

    #: Canonical failure-counter keys every ``stats()["executor"]`` /
    #: ``explain().executor`` dict carries (missing ones read 0, so
    #: monitoring code never branches on the backend).
    _EXECUTOR_COUNTERS = (
        "worker_failures",
        "respawns",
        "in_process_retries",
        "timeouts",
        "worker_errors",
        "shm_fallbacks",
        "quarantined",
        "quarantine_hits",
    )

    @contextmanager
    def deadline(self, seconds: float | None):
        """Bound every query executed inside the block by a deadline.

        ``with engine.deadline(0.05): engine.execute_batch(specs)``
        raises :class:`ExecutionTimeout
        <repro.core.engine.executors.base.ExecutionTimeout>` if the
        budget expires mid-execution — cooperating loops poll the scope
        at item and per-query boundaries, and the process backend
        terminates in-flight workers (respawned on the next dispatch).
        ``None`` means no deadline (an explicit infinite scope that can
        still be :meth:`~repro.core.engine.executors.base.CancelScope.cancel`-ed).
        Scopes nest; the inner block's deadline wins while it is open.
        """
        previous = self._cancel_scope
        scope = (
            CancelScope.after(seconds) if seconds is not None else CancelScope(None)
        )
        self._cancel_scope = scope
        try:
            yield scope
        finally:
            self._cancel_scope = previous

    def _executor_diagnostics(self) -> dict:
        """The executor failure story for ``stats()`` / ``explain()``.

        The single engine executes inline, so its counters are
        structurally zero — but the schema matches the sharded
        engine's, so dashboards read one shape.
        """
        backend = self._executor_backend()
        diagnostics: dict = {"backend": backend, "configured": backend}
        for counter in self._EXECUTOR_COUNTERS:
            diagnostics[counter] = 0
        diagnostics["inline_fallbacks"] = 0
        diagnostics["breaker"] = {"state": "disabled"}
        return diagnostics

    def explain(self, spec, strategy: str | None = None) -> "QueryPlan":
        """The evaluation plan for ``spec``, without computing answers.

        Runs only the filtering phase (cheap — no distribution is
        built, no probability computed) and reports which pipeline
        stages ``execute`` would run, what the filter keeps, the cache
        state, and the executor's failure counters
        (:attr:`~repro.core.types.QueryPlan.executor`).
        """
        plan = self._explain(spec, strategy)
        plan.executor = self._executor_diagnostics()
        plan.storage = self._storage_stats()
        plan.continuous = self._continuous_stats()
        return plan

    def _continuous_stats(self) -> dict:
        """The continuous tier's story for ``stats()`` / ``explain()``.

        ``{"attached": False}`` when no monitor is registered; else the
        monitor's counters under ``attached: True`` — one stable shape,
        shared by both engines.
        """
        if self._continuous is None:
            return {"attached": False}
        return {"attached": True, **self._continuous.stats()}

    @staticmethod
    def _family_of(spec) -> str:
        if isinstance(spec, CKNNQuery):
            return "cknn"
        if isinstance(spec, CRangeQuery):
            return "crange"
        return "cpnn"

    @staticmethod
    def _cache_summary(cache) -> dict | str:
        """Uniform counter snapshot for one LRU cache (or "disabled")."""
        if cache is None:
            return "disabled"
        return {
            "maxsize": cache.maxsize,
            "entries": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
        }

    # Shared ``explain`` arithmetic — the counts and stage suffixes both
    # engine's plans are built from, kept in one place so the sharded
    # plan can never drift from the single engine's (DESIGN.md §12).

    def _knn_plan_counts(self, spec, batch_filter):
        """``(candidates, pruned, fmin^k)`` for a non-trivial k-NN spec,
        or ``None`` when ``k >= N`` resolves as the all-satisfy case."""
        n = len(self._objects)
        k = min(spec.k, n)
        if k >= n:
            return None
        survivors, fmin_k = batch_filter.kth_filter([spec.q], [k])[0]
        return int(survivors.size), n - int(survivors.size), fmin_k

    def _range_plan_counts(self, spec, batch_filter):
        """``(sure_in, sure_out, straddle)`` MBR classification counts."""
        mindist, maxdist = batch_filter.matrices([spec.q])
        sure_in = int(np.count_nonzero(maxdist[0] <= spec.radius))
        sure_out = int(np.count_nonzero(mindist[0] > spec.radius))
        return sure_in, sure_out, len(self._objects) - sure_in - sure_out

    def _cpnn_plan_stages(self, spec, strategy):
        """``(verifier names, trailing stage lines)`` of a C-PNN plan."""
        if strategy == Strategy.VR:
            chain = self._chain_for(type(spec))
            verifiers = tuple(v.name for v in chain.verifiers)
            stages = [
                "distance distributions + subregion table",
                "verifier chain: " + " → ".join(verifiers),
                "incremental refinement of surviving candidates",
            ]
            if self._config.parametric_fast_path:
                stages.insert(
                    0,
                    "parametric fast path: analytic subregion table when "
                    "every candidate has a closed-form distance "
                    "(histogram pipeline on fallback)",
                )
            if self._config.mc_tier:
                stages.insert(
                    len(stages) - 1,
                    "MC tier: Hoeffding bounds from "
                    f"{self._config.mc_trials} joint samples at "
                    f"{self._config.mc_confidence:g} confidence "
                    "(uncertified; certified tiers unaffected)",
                )
            return verifiers, stages
        if strategy == Strategy.REFINE:
            return (), [
                "distance distributions + subregion table",
                "incremental refinement of all candidates",
            ]
        return (), [
            "distance distributions + subregion table",
            "exact integration of every candidate (Basic)",
        ]

    def execute(self, spec, strategy: str | None = None) -> QueryResult:
        """Answer one query spec; dispatches on the spec type.

        ``spec`` may be a :class:`CPNNQuery`, :class:`CKNNQuery`,
        :class:`CRangeQuery`, or a bare query point (normalised to a
        :class:`CPNNQuery` with the Section V defaults).  ``strategy``
        overrides the configured evaluation strategy for C-PNN specs;
        it is validated for every spec but otherwise ignored by the
        other families (they have a single evaluation pipeline).

        Always returns a :class:`~repro.core.types.QueryResult`; an
        empty engine yields an empty result for every spec type.
        """
        spec = self._as_spec(spec)
        strategy = self._as_strategy(strategy)
        if not self._objects:
            return QueryResult(answers=(), spec=spec)
        if isinstance(spec, CKNNQuery):
            results, filter_seconds = self._knn_group([spec])
            results[0].timings.filtering = filter_seconds
            return results[0]
        if isinstance(spec, CRangeQuery):
            results, filter_seconds = self._range_group([spec])
            results[0].timings.filtering = filter_seconds
            return results[0]
        result = self._execute_pnn(spec, strategy)
        result.spec = spec
        return result

    def execute_batch(self, specs: Sequence, strategy: str | None = None) -> BatchResult:
        """Answer a batch of specs, amortising work batch-wide.

        Semantically equivalent to ``[execute(s) for s in specs]`` —
        per-candidate arithmetic is shared with the single-spec path,
        so answers and records agree exactly — but work is restructured
        around the batch: each family's filtering runs as one
        vectorised MBR sweep, distance distributions go through the
        engine's LRU cache, and C-PNN verification/refinement run as
        flat sweeps (see :mod:`repro.core.batch`).  Specs of different
        types may be mixed freely; ``results`` aligns with ``specs``.

        An empty ``specs`` sequence yields an empty
        :class:`~repro.core.batch.BatchResult`; an empty engine yields
        one empty :class:`~repro.core.types.QueryResult` per spec.
        """
        specs = [self._as_spec(s) for s in specs]
        self._as_strategy(strategy)  # reject typos even in k-NN/range-only batches
        batch = BatchResult()
        if not specs:
            return batch
        if not self._objects:
            batch.results = [QueryResult(answers=(), spec=s) for s in specs]
            return batch
        slots: list[QueryResult | None] = [None] * len(specs)
        knn_idx = [i for i, s in enumerate(specs) if isinstance(s, CKNNQuery)]
        range_idx = [i for i, s in enumerate(specs) if isinstance(s, CRangeQuery)]
        pnn_idx = [
            i
            for i, s in enumerate(specs)
            if not isinstance(s, (CKNNQuery, CRangeQuery))
        ]
        if pnn_idx:
            sub = self._pnn_batch([specs[i] for i in pnn_idx], strategy)
            for i, result in zip(pnn_idx, sub.results):
                slots[i] = result
            for phase in ("filtering", "initialization", "verification", "refinement"):
                setattr(
                    batch.timings,
                    phase,
                    getattr(batch.timings, phase) + getattr(sub.timings, phase),
                )
            batch.cache_hits += sub.cache_hits
            batch.cache_misses += sub.cache_misses
            batch.table_hits += sub.table_hits
            batch.table_misses += sub.table_misses
            batch.result_hits += sub.result_hits
            batch.replayed.extend(sorted(pnn_idx[j] for j in sub.replayed))
        for indices, runner in ((knn_idx, self._knn_group), (range_idx, self._range_group)):
            if not indices:
                continue
            results, filter_seconds = runner([specs[i] for i in indices])
            batch.timings.filtering += filter_seconds
            for i, result in zip(indices, results):
                slots[i] = result
                timings = result.timings
                batch.timings.initialization += timings.initialization
                batch.timings.verification += timings.verification
                batch.timings.refinement += timings.refinement
                batch.cache_hits += result.cache_hits
                batch.cache_misses += result.cache_misses
        batch.results = slots
        return batch


class UncertainEngine(
    QueryFacadeMixin,
    ObjectRegistryMixin,
    FilterStageMixin,
    PnnExecutorMixin,
    KnnExecutorMixin,
    RangeExecutorMixin,
):
    """Evaluates probabilistic queries over uncertain objects.

    One engine serves all three query families — C-PNN (the paper's
    Definition 1), constrained probabilistic k-NN, and constrained
    probabilistic range — through :meth:`execute` /
    :meth:`execute_batch`, which dispatch on the spec type and share
    the filtering / caching / columnar substrate.

    For C-PNN specs the engine implements the three evaluation
    strategies compared in Section V: **Basic** (exact qualification
    probabilities for every candidate), **Refine** (incremental
    refinement directly), and **VR** (the paper's proposal — the
    verifier chain settles most candidates algebraically; survivors
    fall through to refinement seeded with the verifier's bounds).

    Parameters
    ----------
    objects:
        Any sequence of objects satisfying the
        :class:`~repro.uncertainty.objects.SpatialUncertain` protocol
        (1-D intervals, 2-D disks/segments/rectangles, or a mixture of
        same-dimension objects).  May be empty: an empty engine answers
        every ``execute``/``execute_batch`` spec with an empty result
        (DESIGN.md §8) until objects are inserted.
    config:
        Optional :class:`~repro.core.engine.config.EngineConfig`.
    """

    def __init__(self, objects: Sequence, config: EngineConfig | None = None):
        self._config = config or EngineConfig()
        self._init_registry(objects)
        self._init_chains()
        self._init_filter_stage()
        self._distribution_cache: DistributionCache | None = (
            DistributionCache(self._config.distribution_cache_size)
            if self._config.distribution_cache_size
            else None
        )
        #: LRU of fully built subregion tables keyed by query point,
        #: selectively invalidated on dynamic updates (DESIGN.md §11).
        self._table_cache: TableCache | None = (
            TableCache(self._config.table_cache_size)
            if self._config.table_cache_size
            else None
        )

    @property
    def config(self) -> EngineConfig:
        return self._config

    def close(self) -> None:
        """Release engine-owned resources.

        For ``storage="ram"`` engines there is nothing resident; for
        ``shm``/``mmap`` storage this unlinks the engine-owned column
        stores (DESIGN.md §16).  Exists on both engine classes so they
        are interchangeable in ``with`` blocks and service shutdown
        paths.
        """
        self._release_stores()

    def __enter__(self) -> "UncertainEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _explain(self, spec, strategy: str | None = None) -> QueryPlan:
        """Single-engine plan arithmetic behind the façade's
        :meth:`~QueryFacadeMixin.explain` wrapper (which stamps the
        executor diagnostics on the returned plan)."""
        spec = self._as_spec(spec)
        self._flush_table_invalidations()  # report live entry counts
        caches = self._cache_stats()
        n = len(self._objects)
        family = self._family_of(spec)
        if not self._objects:
            return QueryPlan(
                spec=spec,
                family=family,
                strategy=None,
                index="none",
                stages=["empty engine: return an empty result"],
                caches=caches,
            )
        index = "rtree" if isinstance(self._filter, PnnFilter) else "linear"
        if family == "cknn":
            counts = self._knn_plan_counts(spec, self._ensure_batch_filter())
            if counts is None:
                return QueryPlan(
                    spec=spec,
                    family=family,
                    strategy=None,
                    index=index,
                    stages=[
                        f"k={spec.k} covers all {n} objects: "
                        "every object qualifies with probability 1"
                    ],
                    candidates=n,
                    pruned=0,
                    fmin=float("inf"),
                    caches=caches,
                )
            candidates, pruned, fmin_k = counts
            return QueryPlan(
                spec=spec,
                family=family,
                strategy=None,
                index=index,
                stages=[
                    f"MBR filtering with f_min^{min(spec.k, n)} (vectorised sweep)",
                    "distance distributions for survivors (LRU cache)",
                    "RS-style k-NN bounds via columnar cdf kernels",
                    "exact Poisson-binomial integration for undecided objects",
                ],
                candidates=candidates,
                pruned=pruned,
                fmin=fmin_k,
                caches=caches,
            )
        if family == "crange":
            sure_in, sure_out, straddle = self._range_plan_counts(
                spec, self._ensure_batch_filter()
            )
            return QueryPlan(
                spec=spec,
                family=family,
                strategy=None,
                index=index,
                stages=[
                    "MBR range classification (vectorised sweep): "
                    f"{sure_in} certainly inside, {sure_out} certainly outside",
                    f"exact region-distance re-check for {straddle} straddling objects",
                    "cdf(radius) via columnar kernel for true straddlers (LRU cache)",
                ],
                candidates=straddle,
                pruned=sure_in + sure_out,
                fmin=float(spec.radius),
                caches=caches,
            )
        strategy = self._as_strategy(strategy)
        filter_result = self._single_filter()(spec.q)
        verifiers, suffix = self._cpnn_plan_stages(spec, strategy)
        return QueryPlan(
            spec=spec,
            family=family,
            strategy=strategy,
            index=index,
            stages=["PNN filtering (f_min pruning rule)"] + suffix,
            verifiers=verifiers,
            candidates=len(filter_result.candidates),
            pruned=n - len(filter_result.candidates),
            fmin=filter_result.fmin,
            caches=caches,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _cache_stats(self) -> dict:
        """Snapshot of the engine's cache configuration and counters."""
        return {
            "distribution_cache": self._cache_summary(self._distribution_cache),
            "table_cache": self._cache_summary(self._table_cache),
        }

    def stats(self) -> dict:
        """Live observability counters, cheap enough to poll.

        Returns a plain dict (stable keys, JSON-friendly values):
        object count, which index serves single-query filtering, the
        deferred-maintenance queue depths, and per-cache
        occupancy/hit/miss counters.  :class:`ShardedEngine
        <repro.core.engine.sharded.ShardedEngine>` extends the same
        shape with per-shard occupancy and parallel-execution
        accounting.
        """
        if not self._objects:
            index = "none"
        elif isinstance(self._filter, PnnFilter):
            index = "rtree"
        else:
            index = "linear"
        return {
            "engine": type(self).__name__,
            "objects": len(self._objects),
            "index": index,
            "executor": self._executor_diagnostics(),
            "pending_tree_ops": len(self._pending_tree_ops),
            "filter_stale": self._filter_stale,
            "pending_invalidations": len(self._pending_invalidation),
            "caches": self._cache_stats(),
            "storage": self._storage_stats(),
            "continuous": self._continuous_stats(),
            "mc": {
                "enabled": self._config.mc_tier,
                "trials": self._config.mc_trials,
                "confidence": self._config.mc_confidence,
                "seed": self._config.mc_seed,
            },
            "parametric": {
                "fast_path": self._config.parametric_fast_path,
                "grid": self._config.analytic_grid,
                "max_grid": self._config.analytic_max_grid,
            },
        }

    # ------------------------------------------------------------------
    # Legacy entry points (deprecation shims; see DESIGN.md §7)
    # ------------------------------------------------------------------

    def query(
        self,
        q,
        threshold: float | None = None,
        tolerance: float | None = None,
        strategy: str | None = None,
    ) -> QueryResult:
        """Answer a C-PNN query (deprecated; use :meth:`execute`).

        ``q`` may be a bare query point or a prepared
        :class:`~repro.core.types.CPNNQuery`; ``threshold``/
        ``tolerance`` override the query's values when given.  Unlike
        :meth:`execute`, raises :class:`ValueError` on an empty engine
        (the pre-façade behaviour).
        """
        warnings.warn(
            "query() is deprecated; use execute(CPNNQuery(q, threshold, "
            "tolerance)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not self._objects:
            raise ValueError("cannot query an empty engine (insert objects first)")
        query = self._as_query(q, threshold, tolerance)
        result = self._execute_pnn(query, self._as_strategy(strategy))
        result.spec = query
        return result

    def query_batch(
        self,
        points: Sequence,
        threshold: float | None = None,
        tolerance: float | None = None,
        strategy: str | None = None,
    ) -> BatchResult:
        """Batch C-PNN evaluation (deprecated; use :meth:`execute_batch`).

        Semantically equivalent to calling :meth:`query` once per point
        with the same ``threshold``/``tolerance``/``strategy``; see
        :meth:`execute_batch` for the amortisation details.  Raises
        :class:`ValueError` on an empty engine when ``points`` is
        non-empty (the pre-façade behaviour).
        """
        warnings.warn(
            "query_batch() is deprecated; use execute_batch([CPNNQuery(...)"
            ", ...]) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._as_strategy(strategy)  # validate even for an empty batch
        points = list(points)
        if not points:
            return BatchResult()
        if not self._objects:
            raise ValueError("cannot query an empty engine (insert objects first)")
        queries = [self._as_query(p, threshold, tolerance) for p in points]
        return self._pnn_batch(queries, strategy)


class CPNNEngine(UncertainEngine):
    """Legacy name of :class:`UncertainEngine`, kept as a thin shim.

    Identical in every respect except that construction requires a
    non-empty object sequence (the pre-façade contract; an
    :class:`UncertainEngine` may start empty and answers ``execute``
    specs with empty results).  New code should construct
    :class:`UncertainEngine` directly.
    """

    def __init__(self, objects: Sequence, config: EngineConfig | None = None):
        if not objects:
            raise ValueError("engine requires at least one object")
        super().__init__(objects, config)
