"""Engine tuning knobs: evaluation strategies and :class:`EngineConfig`.

Configuration is deliberately the only state shared between every
stage of the pipeline (DESIGN.md §3): the registry, the filter stage,
and the three family executors all read the same immutable-ish config
object, so a :class:`~repro.core.engine.sharded.ShardedEngine` can
hand one config to every shard and every execution lane and stay
bit-identical to a single engine built from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.bounds import DEFAULT_BOUND_PAD
from repro.core.verifiers.chain import VerifierChain, default_chain

__all__ = ["EngineConfig", "Strategy"]


class Strategy:
    """String constants naming the three evaluation strategies."""

    BASIC = "basic"
    REFINE = "refine"
    VR = "vr"

    ALL = (BASIC, REFINE, VR)


@dataclass
class EngineConfig:
    """Tuning knobs for :class:`~repro.core.engine.UncertainEngine`.

    Attributes
    ----------
    strategy:
        One of :class:`Strategy`'s constants; default is the paper's
        proposed VR.
    chain_factory:
        Builds the verifier chain used by VR (default: RS → L-SR →
        U-SR, Figure 5's order).  The engine calls it once at
        construction and reuses the chain across queries — verifiers
        are stateless, so per-query rebuilding would only add
        allocation overhead to the hot path.
    pipeline:
        Optional hook composing verifier chains *per spec type*: called
        with the spec's class (e.g. :class:`CPNNQuery`) the first time
        that type is executed, it may return a
        :class:`~repro.core.verifiers.chain.VerifierChain` to use for
        that family, or ``None`` to keep ``chain_factory``'s chain.
        The result is cached per type.  Today only specs evaluated
        through the subregion verification framework (C-PNN) consult
        it; the type argument exists so future families can branch
        without changing the signature.
    bound_pad:
        Floating-point guard added around computed bounds
        (DESIGN.md §5).
    refinement_order:
        ``'widest'`` integrates the subregion with the widest remaining
        bound gap first (fastest classification); ``'left'`` follows
        ascending distance.
    quadrature_margin:
        Extra Gauss–Legendre nodes beyond the exactness requirement.
    use_rtree:
        Filter through a bulk-loaded R-tree (True, the paper's setup)
        or a linear scan (False, for baselining the index itself).
    rtree_max_entries:
        Node capacity of the bulk-loaded R-tree.
    grid_refinement:
        Split every inner subregion into this many parts before
        verification: tighter verifier bounds at proportionally higher
        verification cost (an extension beyond the paper; see the
        grid-refinement ablation bench).
    distribution_cache_size:
        Capacity of the LRU cache of distance distributions used by
        the batch paths and the routed k-NN/range paths (entries are
        keyed by ``(object, query point)``, so repeated probes skip the
        histogram fold).  0 disables the cache.
    table_cache_size:
        Capacity (in query points) of the LRU cache of fully built
        subregion tables used by the C-PNN batch path.  A repeated
        probe skips filtering *and* initialisation for that point.
        Dynamic updates invalidate entries *selectively*: only points
        whose candidate set the mutated object's MBR can affect are
        dropped (DESIGN.md §11); the rest stay warm.  0 disables the
        cache.  Note the bound is entry-count, not bytes: each table
        pins its distributions plus O(|C|·M) matrices, so size this to
        the working set of hot probe points, not higher.
    executor:
        Which executor backend a
        :class:`~repro.core.engine.sharded.ShardedEngine` fans work out
        on (DESIGN.md §13): ``"serial"`` (inline, the bit-identity
        reference), ``"thread"`` (the shared thread pool — wins when
        numpy sweeps dominate or on free-threaded builds),
        ``"process"`` (persistent spawn workers with resident lane
        caches — wins for GIL-bound C-PNN verification), or ``"auto"``
        (the default: ``thread`` on free-threaded interpreters or
        single-core boxes, ``process`` on multi-core GIL builds with a
        picklable config).  Single engines always execute serially;
        the knob only drives the sharded fan-out.  Answers are
        bit-identical across all backends.
    process_min_batch:
        Under the process backend, C-PNN batches smaller than this run
        inline on the parent's lanes instead of crossing the process
        boundary — per-spec IPC would dominate tiny batches, and unit
        workloads should not pay a pool spawn.  0 forces every batch to
        the workers (useful in tests).
    breaker_threshold:
        Consecutive unhealthy dispatches before the sharded engine's
        circuit breaker degrades the backend one level along
        ``process → thread → serial`` (DESIGN.md §14).
    breaker_probe_after:
        Consecutive healthy dispatches a degraded breaker requires
        before probing one dispatch at the healthier level; a clean
        probe heals one level.
    mc_tier:
        Prepend a Monte-Carlo verifier (certified Hoeffding confidence
        bounds, DESIGN.md §15) to the chain built by ``chain_factory``.
        Candidates it settles hold with probability ``mc_confidence``;
        everything it leaves unknown falls through to the certified
        algebraic tiers unchanged.  Off by default — the paper's
        answers are exact.
    mc_trials:
        Joint distance samples the MC tier draws per query.
    mc_confidence:
        Simultaneous coverage level of the MC tier's bounds.
    mc_seed:
        Base seed of the MC tier's deterministic per-table streams.
    parametric_fast_path:
        When every candidate of a VR query exposes a closed-form
        ``parametric_distance``, evaluate verification on an analytic
        subregion table (no histogram materialisation); queries the
        analytic brackets cannot settle fall back to the standard
        histogram pipeline, whose exact tier is bit-identical to the
        histogram engine.
    analytic_grid:
        Inner-subregion count of the first analytic table.
    analytic_max_grid:
        Escalation ceiling: the analytic grid refines ×4 per round up
        to this count before falling back to histograms.
    storage:
        Column-store backend for the engine's bulk coordinate arrays
        (DESIGN.md §16): ``"ram"`` (resident numpy, zero overhead, the
        default), ``"shm"`` (one shared-memory segment — the resident
        bytes are directly attachable by process workers), or
        ``"mmap"`` (a 64-byte-aligned on-disk file streamed through a
        bounded buffer pool of mmap windows — out-of-core scale with
        page-fault/eviction accounting in ``stats()["storage"]``).
        Answers are bit-identical across all three.
    storage_pool_pages:
        Buffer-pool capacity (in pages) of each mmap-backed store.
        Bounds the resident bytes at ``storage_pool_pages ·
        storage_page_bytes`` per store.
    storage_page_bytes:
        Page size of mmap-backed stores; rounded up to the platform
        mmap allocation granularity.
    storage_dir:
        Directory for mmap store files (default: the system temp dir).
    """

    strategy: str = Strategy.VR
    chain_factory: Callable[[], VerifierChain] = default_chain
    pipeline: Callable[[type], VerifierChain | None] | None = None
    bound_pad: float = DEFAULT_BOUND_PAD
    refinement_order: str = "widest"
    quadrature_margin: int = 1
    use_rtree: bool = True
    rtree_max_entries: int = 16
    grid_refinement: int = 1
    distribution_cache_size: int = 65536
    table_cache_size: int = 256
    executor: str = "auto"
    process_min_batch: int = 16
    breaker_threshold: int = 3
    breaker_probe_after: int = 8
    mc_tier: bool = False
    mc_trials: int = 4096
    mc_confidence: float = 0.999
    mc_seed: int = 20080199
    parametric_fast_path: bool = True
    analytic_grid: int = 64
    analytic_max_grid: int = 4096
    storage: str = "ram"
    storage_pool_pages: int = 64
    storage_page_bytes: int = 1 << 20
    storage_dir: str | None = None

    def __post_init__(self) -> None:
        if self.strategy not in Strategy.ALL:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.executor not in ("auto", "serial", "thread", "process"):
            raise ValueError(
                f"unknown executor {self.executor!r}: expected 'auto', "
                "'serial', 'thread', or 'process'"
            )
        if self.process_min_batch < 0:
            raise ValueError("process_min_batch must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_probe_after < 1:
            raise ValueError("breaker_probe_after must be >= 1")
        if self.refinement_order not in ("widest", "left"):
            raise ValueError("refinement_order must be 'widest' or 'left'")
        if self.grid_refinement < 1:
            raise ValueError("grid_refinement must be >= 1")
        if self.distribution_cache_size < 0:
            raise ValueError("distribution_cache_size must be >= 0")
        if self.table_cache_size < 0:
            raise ValueError("table_cache_size must be >= 0")
        if self.pipeline is not None and not callable(self.pipeline):
            raise ValueError("pipeline must be callable or None")
        if self.mc_trials < 1:
            raise ValueError("mc_trials must be >= 1")
        if not 0.0 < self.mc_confidence < 1.0:
            raise ValueError("mc_confidence must be in (0, 1)")
        if self.analytic_grid < 1:
            raise ValueError("analytic_grid must be >= 1")
        if self.analytic_max_grid < self.analytic_grid:
            raise ValueError("analytic_max_grid must be >= analytic_grid")
        if self.storage not in ("ram", "shm", "mmap"):
            raise ValueError(
                f"unknown storage {self.storage!r}: expected 'ram', "
                "'shm', or 'mmap'"
            )
        if self.storage_pool_pages < 1:
            raise ValueError("storage_pool_pages must be >= 1")
        if self.storage_page_bytes < 1:
            raise ValueError("storage_page_bytes must be >= 1")
