"""Inline execution: the bit-identity reference backend."""

from __future__ import annotations

from repro.core.engine.executors.base import ExecutorBase, check_cancel

__all__ = ["SerialExecutor"]


class SerialExecutor(ExecutorBase):
    """Run every work item inline on the calling thread.

    Exactly the single-engine evaluation order with the sharded
    engine's reconciliation around it — the reference the parallel
    backends are asserted bit-identical against, the zero-overhead
    choice for tiny workloads, and the circuit breaker's last resort
    (it cannot lose a worker).  Deadlines are honoured at item
    boundaries (and inside the C-PNN per-query loops).
    """

    name = "serial"

    def run_sweeps(self, items, queries, mindist, maxdist) -> None:
        for item in items:
            check_cancel(self._host)
            shard_min, shard_max = self._host._run_sweep_item(item, queries)
            mindist[:, item.cols] = shard_min
            maxdist[:, item.cols] = shard_max

    def run_pnn(self, items, staged, snapshot) -> list:
        outcomes = []
        for item in items:
            check_cancel(self._host)
            outcomes.append(self._host._run_pnn_item(item, staged, snapshot))
        return outcomes
