"""Process execution: persistent spawn workers with resident lane state.

The backend that buys GIL-bound C-PNN verification real cores
(DESIGN.md §13).  One spawn-based worker per lane, addressed over its
own duplex pipe — addressed dispatch (not a task queue) is what keeps
the content-hash lane affinity meaningful across the process boundary:
worker *i* always serves lane *i*, so its resident
``DistributionCache``/``TableCache`` stay warm between batches exactly
like an in-process lane's.

Worker lifecycle
----------------
On (re)spawn, a worker receives one ``attach`` message: the pickled
:class:`~repro.core.engine.config.EngineConfig`, the object list, and a
:class:`~repro.shm.ShmDescriptor` for the parent-exported coordinate
segment.  It rebuilds a full
:class:`~repro.index.filtering.BatchMbrFilter` as zero-copy views over
that segment (no coordinate is re-pickled) and a resident
:class:`~repro.core.engine.lanes.Lane`; thereafter each work message
piggybacks the mutation-log suffix the worker hasn't seen, which it
replays against its replica with the registry's exact ordering
semantics before executing.  The parent unlinks the segment as soon as
every worker has attached — mappings outlive the name, so nothing can
leak in ``/dev/shm`` past the handshake.

Crash recovery
--------------
A worker that dies mid-batch (pipe EOF / process exit) is detected at
send or receive; its work item is re-executed in-process through the
same host callbacks the serial backend uses — answers are bit-identical
because it is the same pipeline, only colder caches — the failure is
counted in :meth:`ProcessExecutor.stats`, and the worker is respawned
(with a fresh snapshot) before the next dispatch.  Workers are daemons:
an abandoned engine can never wedge interpreter exit.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import numpy as np

from repro.core.engine.executors.base import ExecutorBase
from repro.shm import attach_arrays, export_arrays, release_segment

__all__ = ["ProcessExecutor"]

#: Pipe poll granularity while waiting on a worker (also the death-
#: detection latency floor).
_POLL_S = 0.05

#: Grace period for a worker to exit after the ``exit`` message.
_JOIN_S = 5.0


class _WorkerDied(Exception):
    """The worker's process ended before answering."""


# ----------------------------------------------------------------------
# Worker side (runs in the spawned interpreter)
# ----------------------------------------------------------------------


class _WorkerState:
    """One worker's resident replica: objects, filter, and its lane."""

    __slots__ = ("lane", "objects", "key_list", "filter", "use_rtree", "shm")

    def __init__(self) -> None:
        self.lane = None
        self.objects: list = []
        self.key_list: list = []
        self.filter = None
        self.use_rtree = True
        self.shm = None


def _worker_attach(lane_id, config, objects, n_lanes, columns_desc):
    from repro.core.engine.lanes import Lane
    from repro.index.filtering import BatchMbrFilter

    state = _WorkerState()
    state.lane = Lane(config, n_lanes)
    state.objects = list(objects)
    state.key_list = [obj.key for obj in state.objects]
    state.use_rtree = config.use_rtree
    if state.use_rtree:
        if columns_desc is not None and state.objects:
            state.filter = BatchMbrFilter.from_shared(columns_desc, state.objects)
            state.shm = state.filter._shm
        elif state.objects:
            state.filter = BatchMbrFilter(state.objects)
        # The lane consults the *current* filter at call time (mutations
        # may rebuild or drop it), hence a closure, not the filter itself.
        state.lane._local_filter = lambda points: state.filter(points)
    else:
        # Linear-scan mode: the lane replays the exact region-distance
        # scan over the resident list (mutated in place, never rebound).
        state.lane._scan_objects = state.objects
    return state


def _worker_apply_ops(state: _WorkerState, ops) -> None:
    """Replay a parent mutation-log suffix against the resident replica.

    Mirrors :class:`~repro.core.engine.registry.ObjectRegistryMixin`'s
    ordering semantics exactly — append on insert, order-preserving
    delete on remove, position-preserving overwrite on replace — plus
    the per-lane cache maintenance the parent applies to every lane:
    invalidation-box queueing and distribution-cache eviction.
    """
    from repro.index.filtering import BatchMbrFilter

    lane = state.lane
    for op in ops:
        kind = op[0]
        if kind == "insert":
            obj = op[1]
            state.objects.append(obj)
            state.key_list.append(obj.key)
            if state.use_rtree:
                if state.filter is None:
                    state.filter = BatchMbrFilter(state.objects)
                else:
                    state.filter.append(obj)
            lane._queue_invalidation(obj)
        elif kind == "remove":
            key = op[1]
            index = state.key_list.index(key)
            victim = state.objects.pop(index)
            del state.key_list[index]
            if state.use_rtree and state.filter is not None:
                if state.objects:
                    state.filter.remove_at(index)
                else:
                    state.filter = None
            lane._queue_invalidation(victim)
            if lane._distribution_cache is not None:
                lane._distribution_cache.evict_object(victim)
            if not state.objects:
                # Drained: mirror the engine-side reset (a refill may
                # change dimensionality; DESIGN.md §11).
                lane._pending_invalidation.clear()
                if lane._table_cache is not None:
                    lane._table_cache.clear()
        elif kind == "replace":
            key, obj = op[1], op[2]
            index = state.key_list.index(key)
            victim = state.objects[index]
            state.objects[index] = obj
            state.key_list[index] = obj.key
            if state.use_rtree and state.filter is not None:
                state.filter.replace_at(index, obj)
            lane._queue_invalidation(victim)
            lane._queue_invalidation(obj)
            if lane._distribution_cache is not None:
                lane._distribution_cache.evict_object(victim)
        else:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unknown mutation op {kind!r}")


def _worker_main(conn, lane_id: int) -> None:
    """Spawn target: serve attach/mutate/pnn/sweep requests until exit."""
    state: _WorkerState | None = None
    crash_armed = False
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if crash_armed and kind in ("pnn", "sweep"):
            os._exit(13)  # armed by "die": perish mid-batch, task in hand
        try:
            if kind == "ping":
                conn.send(("ok", "pong"))
            elif kind == "attach":
                _, config, objects, n_lanes, columns_desc = msg
                state = _worker_attach(
                    lane_id, config, objects, n_lanes, columns_desc
                )
                conn.send(("ok", len(state.objects)))
            elif kind == "pnn":
                _, ops, specs, strategy = msg
                if ops:
                    _worker_apply_ops(state, ops)
                tick = time.perf_counter()
                sub = state.lane._pnn_batch(list(specs), strategy)
                conn.send(("ok", (sub, time.perf_counter() - tick)))
            elif kind == "sweep":
                _, ops, queries, cols, out_desc = msg
                if ops:
                    _worker_apply_ops(state, ops)
                shard_min, shard_max = state.filter.matrices_rows(queries, cols)
                out_shm, views = attach_arrays(out_desc, writable=True)
                try:
                    views["mindist"][:, cols] = shard_min
                    views["maxdist"][:, cols] = shard_max
                finally:
                    del views  # drop buffer refs before unmapping
                    out_shm.close()
                conn.send(("ok", None))
            elif kind == "exit":
                conn.send(("ok", None))
                break
            elif kind == "die":
                # Crash-robustness hook: die on the *next* work item, so
                # the parent discovers the corpse mid-batch (the hard
                # case), not at the pre-dispatch liveness check.
                crash_armed = True
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown message {kind!r}"))
        except BaseException as exc:  # noqa: BLE001 - must answer, not die
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):  # pragma: no cover
                break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _Worker:
    __slots__ = ("proc", "conn", "synced", "alive")

    def __init__(self, proc, conn, synced: int) -> None:
        self.proc = proc
        self.conn = conn
        #: Global mutation-log index this worker has replayed up to.
        self.synced = synced
        self.alive = True


class ProcessExecutor(ExecutorBase):
    """Persistent spawn-based worker pool, one addressed worker per lane."""

    name = "process"

    def __init__(self, host) -> None:
        super().__init__(host)
        self._ctx = mp.get_context("spawn")
        self._workers: list[_Worker | None] = []
        self._started = False
        #: Mutation log since pool start; ``_ops_base`` is the global
        #: index of ``_ops[0]`` (the prefix every worker has replayed
        #: is compacted away after each dispatch).
        self._ops: list[tuple] = []
        self._ops_base = 0
        self._failures = 0
        self._respawns = 0
        self._dispatches = 0
        self._retries = 0

    # -- pool lifecycle -------------------------------------------------

    @property
    def n_workers(self) -> int:
        return self._host._max_workers

    def ensure_started(self) -> None:
        """Spawn (or respawn) every missing/dead worker and attach it to
        a snapshot of the current object set."""
        if not self._started:
            self._workers = [None] * self.n_workers
            self._ops = []
            self._ops_base = 0
            self._started = True
        lanes = []
        for lane_id, worker in enumerate(self._workers):
            if worker is not None and worker.alive and worker.proc.is_alive():
                continue
            if worker is not None:
                self._mark_dead(worker)
                self._respawns += 1
            lanes.append(lane_id)
        if lanes:
            self._spawn_group(lanes)

    def _spawn_group(self, lanes: list[int]) -> None:
        host = self._host
        columns_desc = None
        columns_shm = None
        if host._config.use_rtree and host._objects:
            from repro.index.filtering import BatchMbrFilter

            columns_shm, columns_desc = BatchMbrFilter(host._objects).to_shared()
        try:
            top = self._ops_base + len(self._ops)
            spawned = []
            for lane_id in lanes:
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(child_conn, lane_id),
                    name=f"repro-lane-{lane_id}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                worker = _Worker(proc, parent_conn, top)
                self._workers[lane_id] = worker
                worker.conn.send(
                    (
                        "attach",
                        host._config,
                        host._objects,
                        len(host._lanes),
                        columns_desc,
                    )
                )
                spawned.append(worker)
            for worker in spawned:
                status, payload = self._recv(worker)
                if status != "ok":  # pragma: no cover - attach never raises
                    raise RuntimeError(f"worker attach failed: {payload}")
        finally:
            # Mappings outlive the name: once every worker holds its
            # attachment the name can go, so a crash can't leak it.
            if columns_shm is not None:
                release_segment(columns_shm)

    def close(self) -> None:
        for worker in self._workers:
            if worker is None or not worker.alive:
                continue
            try:
                worker.conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            if worker is None:
                continue
            worker.proc.join(_JOIN_S)
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                worker.proc.terminate()
                worker.proc.join(_JOIN_S)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers = []
        self._ops = []
        self._ops_base = 0
        self._started = False

    # -- mutation log ---------------------------------------------------

    def record_mutation(self, op) -> None:
        if self._started:
            self._ops.append(op)

    def _ops_for(self, worker: _Worker) -> list[tuple]:
        return self._ops[worker.synced - self._ops_base :]

    def _compact_ops(self) -> None:
        live = [w.synced for w in self._workers if w is not None and w.alive]
        if not live:
            return
        floor = min(live)
        drop = floor - self._ops_base
        if drop > 0:
            del self._ops[:drop]
            self._ops_base = floor

    # -- plumbing -------------------------------------------------------

    def _mark_dead(self, worker: _Worker) -> None:
        if not worker.alive:
            return
        worker.alive = False
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _fail(self, worker: _Worker) -> None:
        self._mark_dead(worker)
        self._failures += 1

    def _recv(self, worker: _Worker):
        """Receive one reply, raising :class:`_WorkerDied` if the
        process ends first (the pipe may still hold a buffered reply,
        which is drained)."""
        while True:
            if worker.conn.poll(_POLL_S):
                try:
                    return worker.conn.recv()
                except (EOFError, OSError):
                    raise _WorkerDied from None
            if not worker.proc.is_alive():
                if worker.conn.poll(0):
                    try:
                        return worker.conn.recv()
                    except (EOFError, OSError):
                        raise _WorkerDied from None
                raise _WorkerDied

    def _call_ok(self, worker: _Worker, message: tuple, synced_to: int):
        """Send + receive one request; updates the worker's sync mark on
        success, raises :class:`_WorkerDied` on worker death."""
        try:
            worker.conn.send(message)
        except (OSError, ValueError):
            raise _WorkerDied from None
        status, payload = self._recv(worker)
        if status != "ok":
            raise RuntimeError(
                f"worker for lane {worker.proc.name} failed: {payload}"
            )
        worker.synced = synced_to
        return payload

    # -- execution ------------------------------------------------------

    def run_pnn(self, items, staged, snapshot) -> list:
        """Dispatch each item to its lane's worker; a dead worker's item
        is transparently re-executed in-process (``staged``/``snapshot``
        are ignored — workers filter against their resident replicas)."""
        self.ensure_started()
        self._dispatches += 1
        top = self._ops_base + len(self._ops)
        outcomes: list = [None] * len(items)
        inflight = []
        for position, item in enumerate(items):
            worker = self._workers[item.lane]
            if worker is None or not worker.alive:
                outcomes[position] = self._retry_inline(item)
                continue
            try:
                worker.conn.send(
                    ("pnn", self._ops_for(worker), item.specs, item.strategy)
                )
                inflight.append((position, item, worker))
            except (OSError, ValueError):
                self._fail(worker)
                outcomes[position] = self._retry_inline(item)
        for position, item, worker in inflight:
            try:
                status, payload = self._recv(worker)
            except _WorkerDied:
                self._fail(worker)
                outcomes[position] = self._retry_inline(item)
                continue
            if status != "ok":
                raise RuntimeError(f"lane {item.lane} worker failed: {payload}")
            worker.synced = top
            outcomes[position] = payload
        self._compact_ops()
        return outcomes

    def _retry_inline(self, item):
        """Graceful degradation: run a dead worker's item through the
        host's in-process path (same pipeline, bit-identical answers)."""
        self._retries += 1
        return self._host._run_pnn_item_local(item)

    def run_sweeps(self, items, queries, mindist, maxdist) -> None:
        """Fan sweep items out across live workers, which write their
        columns into a per-batch shared output segment; anything a dead
        (or not-yet-started) pool can't take runs inline."""
        if not self._started or not any(
            w is not None and w.alive for w in self._workers
        ):
            # No pool yet: don't pay a spawn for a sweep (numpy releases
            # the GIL, so inline is what the thread backend would do on
            # one runnable thread anyway).
            for item in items:
                shard_min, shard_max = self._host._run_sweep_item(item, queries)
                mindist[:, item.cols] = shard_min
                maxdist[:, item.cols] = shard_max
            return
        self.ensure_started()
        self._dispatches += 1
        top = self._ops_base + len(self._ops)
        out_shm, out_desc = export_arrays(
            {
                "mindist": np.zeros(mindist.shape),
                "maxdist": np.zeros(maxdist.shape),
            }
        )
        try:
            fallback: list = []
            inflight = []
            carried: set = set()
            alive = [w for w in self._workers if w is not None and w.alive]
            for position, item in enumerate(items):
                worker = alive[position % len(alive)] if alive else None
                if worker is None or not worker.alive:
                    fallback.append(item)
                    continue
                # Round-robin can hand one worker several items in a
                # single dispatch; only the first message may carry the
                # pending ops suffix (synced advances on recv, so a
                # second send would re-derive and re-apply the same
                # mutations on the worker replica).
                ops = () if id(worker) in carried else self._ops_for(worker)
                try:
                    worker.conn.send(("sweep", ops, queries, item.cols, out_desc))
                    carried.add(id(worker))
                    inflight.append((item, worker))
                except (OSError, ValueError):
                    self._fail(worker)
                    fallback.append(item)
            done = []
            for item, worker in inflight:
                try:
                    status, payload = self._recv(worker)
                except _WorkerDied:
                    self._fail(worker)
                    fallback.append(item)
                    continue
                if status != "ok":
                    raise RuntimeError(f"sweep worker failed: {payload}")
                worker.synced = top
                done.append(item)
            if done:
                _, views = attach_arrays(out_desc)
                try:
                    for item in done:
                        mindist[:, item.cols] = views["mindist"][:, item.cols]
                        maxdist[:, item.cols] = views["maxdist"][:, item.cols]
                finally:
                    del views
            for item in fallback:
                self._retries += 1
                shard_min, shard_max = self._host._run_sweep_item(item, queries)
                mindist[:, item.cols] = shard_min
                maxdist[:, item.cols] = shard_max
        finally:
            release_segment(out_shm)
        self._compact_ops()

    # -- test hooks & observability ------------------------------------

    def inject_crash(self, lane: int) -> None:
        """Test hook: arm lane ``lane``'s worker to exit the instant it
        receives its next work item — the parent then discovers the
        death mid-batch, exactly like a real crash between send and
        reply, and must recover by in-process retry + respawn."""
        worker = self._workers[lane] if self._started else None
        if worker is None or not worker.alive:
            raise RuntimeError(f"no live worker for lane {lane}")
        worker.conn.send(("die",))

    def stats(self) -> dict:
        return {
            "backend": self.name,
            "workers": self.n_workers,
            "started": self._started,
            "alive": sum(
                1
                for w in self._workers
                if w is not None and w.alive and w.proc.is_alive()
            ),
            "dispatches": self._dispatches,
            "worker_failures": self._failures,
            "respawns": self._respawns,
            "in_process_retries": self._retries,
            "pending_ops": len(self._ops),
        }
