"""Process execution: persistent spawn workers with resident lane state.

The backend that buys GIL-bound C-PNN verification real cores
(DESIGN.md §13).  One spawn-based worker per lane, addressed over its
own duplex pipe — addressed dispatch (not a task queue) is what keeps
the content-hash lane affinity meaningful across the process boundary:
worker *i* always serves lane *i*, so its resident
``DistributionCache``/``TableCache`` stay warm between batches exactly
like an in-process lane's.

Worker lifecycle
----------------
On (re)spawn, a worker receives one ``attach`` message: the pickled
:class:`~repro.core.engine.config.EngineConfig`, the object list, and a
:class:`~repro.storage.StoreDescriptor` for the parent-exported
coordinate store — a shared-memory segment by default, or the mmap
column file when ``config.storage == "mmap"`` (workers then map the
file read-only through their own bounded buffer pools instead of a
segment; DESIGN.md §16).  It rebuilds a full
:class:`~repro.index.filtering.BatchMbrFilter` over that store (no
coordinate is re-pickled) and a resident
:class:`~repro.core.engine.lanes.Lane`; thereafter each work message
piggybacks the mutation-log suffix the worker hasn't seen, which it
replays against its replica with the registry's exact ordering
semantics before executing.  The parent unlinks the store's name as
soon as every worker has attached — shm mappings and open file
descriptors outlive the name, so nothing can leak in ``/dev/shm`` or
the spill directory past the handshake.

Crash recovery
--------------
A worker that dies mid-batch (pipe EOF / process exit) is detected at
send or receive; its work item is re-executed in-process through the
same host callbacks the serial backend uses — answers are bit-identical
because it is the same pipeline, only colder caches — the failure is
counted in :meth:`ProcessExecutor.stats`, and the worker is respawned
(with a fresh snapshot) before the next dispatch.  Workers are daemons:
an abandoned engine can never wedge interpreter exit, and a module
``atexit`` hook closes any pool whose engine was abandoned without
``close()`` so no worker or segment survives a normal interpreter end.

Beyond plain crashes, the pool carries three further defences
(DESIGN.md §14): a **poison quarantine** — specs present in an item
whose worker died twice are permanently routed to the in-process serial
path, so one pathological query cannot crash-loop the pool; **deadline
cancellation** — when the host carries an active
:class:`~repro.core.engine.executors.base.CancelScope`, waiting on a
reply past the budget terminates the in-flight workers (the only true
cancellation for a CPU-bound item) and raises :class:`ExecutionTimeout
<repro.core.engine.executors.base.ExecutionTimeout>`; and **shm attach
fallback** — a worker that cannot map the exported coordinate segment
rebuilds its filter from the pickled objects instead (slower attach,
same floats), while a failed parent-side sweep readback recomputes the
columns inline.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
import weakref

import numpy as np

from repro import hooks
from repro.core.batch import point_key
from repro.core.engine.executors.base import ExecutionTimeout, ExecutorBase
from repro.shm import attach_arrays, export_arrays, release_segment

__all__ = ["ProcessExecutor"]

#: Pipe poll granularity while waiting on a worker (also the death-
#: detection latency floor).
_POLL_S = 0.05

#: Grace period for a worker to exit after the ``exit`` message.
_JOIN_S = 5.0

#: Worker deaths holding a given spec before it is quarantined to the
#: in-process serial path (the issue's "kills a worker twice" rule).
_QUARANTINE_KILLS = 2


class _WorkerDied(Exception):
    """The worker's process ended before answering."""


# ----------------------------------------------------------------------
# Worker side (runs in the spawned interpreter)
# ----------------------------------------------------------------------


class _WorkerState:
    """One worker's resident replica: objects, filter, and its lane."""

    __slots__ = (
        "lane",
        "objects",
        "key_list",
        "filter",
        "use_rtree",
        "shm",
        "attach_fallback",
    )

    def __init__(self) -> None:
        self.lane = None
        self.objects: list = []
        self.key_list: list = []
        self.filter = None
        self.use_rtree = True
        self.shm = None
        self.attach_fallback = False


def _worker_attach(lane_id, config, objects, n_lanes, columns_desc):
    from repro.core.engine.lanes import Lane
    from repro.index.filtering import BatchMbrFilter
    from repro.storage import StorageError, open_store

    state = _WorkerState()
    state.lane = Lane(config, n_lanes)
    state.objects = list(objects)
    state.key_list = [obj.key for obj in state.objects]
    state.use_rtree = config.use_rtree
    if state.use_rtree:
        if columns_desc is not None and state.objects:
            try:
                store = open_store(columns_desc)
                state.filter = BatchMbrFilter.from_store(
                    store, state.objects
                )
                state.shm = store
            except (StorageError, FileNotFoundError, OSError, ValueError):
                # The backing store vanished (or could not be mapped)
                # between export and attach.  The objects travelled in
                # the same message, so rebuild the filter locally: a
                # slower attach, bit-identical coordinates, and the
                # parent is told so it can count the degradation.
                state.filter = BatchMbrFilter(state.objects)
                state.attach_fallback = True
        elif state.objects:
            state.filter = BatchMbrFilter(state.objects)
        # The lane consults the *current* filter at call time (mutations
        # may rebuild or drop it), hence a closure, not the filter itself.
        state.lane._local_filter = lambda points: state.filter(points)
    else:
        # Linear-scan mode: the lane replays the exact region-distance
        # scan over the resident list (mutated in place, never rebound).
        state.lane._scan_objects = state.objects
    return state


def _worker_apply_ops(state: _WorkerState, ops) -> None:
    """Replay a parent mutation-log suffix against the resident replica.

    Mirrors :class:`~repro.core.engine.registry.ObjectRegistryMixin`'s
    ordering semantics exactly — append on insert, order-preserving
    delete on remove, position-preserving overwrite on replace — plus
    the per-lane cache maintenance the parent applies to every lane:
    invalidation-box queueing and distribution-cache eviction.
    """
    from repro.index.filtering import BatchMbrFilter

    lane = state.lane
    for op in ops:
        kind = op[0]
        if kind == "insert":
            obj = op[1]
            state.objects.append(obj)
            state.key_list.append(obj.key)
            if state.use_rtree:
                if state.filter is None:
                    state.filter = BatchMbrFilter(state.objects)
                else:
                    state.filter.append(obj)
            lane._queue_invalidation(obj)
        elif kind == "remove":
            key = op[1]
            index = state.key_list.index(key)
            victim = state.objects.pop(index)
            del state.key_list[index]
            if state.use_rtree and state.filter is not None:
                if state.objects:
                    state.filter.remove_at(index)
                else:
                    state.filter = None
            lane._queue_invalidation(victim)
            if lane._distribution_cache is not None:
                lane._distribution_cache.evict_object(victim)
            if not state.objects:
                # Drained: mirror the engine-side reset (a refill may
                # change dimensionality; DESIGN.md §11).
                lane._pending_invalidation.clear()
                if lane._table_cache is not None:
                    lane._table_cache.clear()
        elif kind == "replace":
            key, obj = op[1], op[2]
            index = state.key_list.index(key)
            victim = state.objects[index]
            state.objects[index] = obj
            state.key_list[index] = obj.key
            if state.use_rtree and state.filter is not None:
                state.filter.replace_at(index, obj)
            lane._queue_invalidation(victim)
            lane._queue_invalidation(obj)
            if lane._distribution_cache is not None:
                lane._distribution_cache.evict_object(victim)
        else:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unknown mutation op {kind!r}")


def _worker_main(conn, lane_id: int) -> None:
    """Spawn target: serve attach/mutate/pnn/sweep requests until exit."""
    state: _WorkerState | None = None
    crash_armed = False
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if crash_armed and kind in ("pnn", "sweep"):
            os._exit(13)  # armed by "die": perish mid-batch, task in hand
        try:
            if kind == "ping":
                conn.send(("ok", "pong"))
            elif kind == "attach":
                _, config, objects, n_lanes, columns_desc = msg
                state = _worker_attach(
                    lane_id, config, objects, n_lanes, columns_desc
                )
                conn.send(("ok", (len(state.objects), state.attach_fallback)))
            elif kind == "pnn":
                _, ops, specs, strategy = msg
                if ops:
                    _worker_apply_ops(state, ops)
                tick = time.perf_counter()
                sub = state.lane._pnn_batch(list(specs), strategy)
                conn.send(("ok", (sub, time.perf_counter() - tick)))
            elif kind == "sweep":
                _, ops, queries, cols, out_desc = msg
                if ops:
                    _worker_apply_ops(state, ops)
                shard_min, shard_max = state.filter.matrices_rows(queries, cols)
                out_shm, views = attach_arrays(out_desc, writable=True)
                try:
                    views["mindist"][:, cols] = shard_min
                    views["maxdist"][:, cols] = shard_max
                finally:
                    del views  # drop buffer refs before unmapping
                    out_shm.close()
                conn.send(("ok", None))
            elif kind == "exit":
                conn.send(("ok", None))
                break
            elif kind == "die":
                # Crash-robustness hook: die on the *next* work item, so
                # the parent discovers the corpse mid-batch (the hard
                # case), not at the pre-dispatch liveness check.
                crash_armed = True
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown message {kind!r}"))
        except BaseException as exc:  # noqa: BLE001 - must answer, not die
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):  # pragma: no cover
                break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _Worker:
    __slots__ = ("proc", "conn", "synced", "alive")

    def __init__(self, proc, conn, synced: int) -> None:
        self.proc = proc
        self.conn = conn
        #: Global mutation-log index this worker has replayed up to.
        self.synced = synced
        self.alive = True


#: Every live pool in this interpreter, so an abandoned engine's
#: workers are still closed gracefully at interpreter exit (workers are
#: daemons and also die on pipe EOF, but an explicit exit keeps the
#: shutdown deterministic and /dev/shm clean even under teardown races).
_LIVE_POOLS: "weakref.WeakSet[ProcessExecutor]" = weakref.WeakSet()


@atexit.register
def _close_leftover_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


class ProcessExecutor(ExecutorBase):
    """Persistent spawn-based worker pool, one addressed worker per lane."""

    name = "process"

    def __init__(self, host) -> None:
        super().__init__(host)
        self._ctx = mp.get_context("spawn")
        self._workers: list[_Worker | None] = []
        self._started = False
        #: Mutation log since pool start; ``_ops_base`` is the global
        #: index of ``_ops[0]`` (the prefix every worker has replayed
        #: is compacted away after each dispatch).
        self._ops: list[tuple] = []
        self._ops_base = 0
        self._failures = 0
        self._respawns = 0
        self._dispatches = 0
        self._retries = 0
        self._timeouts = 0
        self._errors = 0
        self._shm_fallbacks = 0
        self._quarantine_hits = 0
        #: Worker-death counts per spec signature; at
        #: ``_QUARANTINE_KILLS`` the signature moves to ``_quarantined``
        #: and that spec never reaches a worker again.
        self._poison: dict[tuple, int] = {}
        self._quarantined: set[tuple] = set()
        _LIVE_POOLS.add(self)

    # -- pool lifecycle -------------------------------------------------

    @property
    def n_workers(self) -> int:
        return self._host._max_workers

    def ensure_started(self) -> None:
        """Spawn (or respawn) every missing/dead worker and attach it to
        a snapshot of the current object set."""
        if not self._started:
            self._workers = [None] * self.n_workers
            self._ops = []
            self._ops_base = 0
            self._started = True
        lanes = []
        for lane_id, worker in enumerate(self._workers):
            if worker is not None and worker.alive and worker.proc.is_alive():
                continue
            if worker is not None:
                self._mark_dead(worker)
                self._respawns += 1
            lanes.append(lane_id)
        if lanes:
            self._spawn_group(lanes)

    def _spawn_group(self, lanes: list[int]) -> None:
        host = self._host
        columns_desc = None
        columns_store = None
        if host._config.use_rtree and host._objects:
            from repro.index.filtering import BatchMbrFilter

            # The transport follows the engine's storage knob: mmap
            # engines ship the coordinate file (workers map it read-only
            # through their own buffer pools), everything else ships one
            # shared-memory segment (DESIGN.md §16).
            transport = "mmap" if host._config.storage == "mmap" else "shm"
            options = (
                {
                    "page_bytes": host._config.storage_page_bytes,
                    "pool_pages": host._config.storage_pool_pages,
                    "directory": host._config.storage_dir,
                }
                if transport == "mmap"
                else {}
            )
            columns_store = BatchMbrFilter(host._objects).to_store(
                transport, **options
            )
            columns_desc = columns_store.descriptor()
            # Injection point: a handler may unlink the backing here to
            # exercise the workers' attach-failure fallback.
            hooks.fire("process.attach", segment=columns_desc.location)
        try:
            top = self._ops_base + len(self._ops)
            spawned = []
            for lane_id in lanes:
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(child_conn, lane_id),
                    name=f"repro-lane-{lane_id}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                worker = _Worker(proc, parent_conn, top)
                self._workers[lane_id] = worker
                worker.conn.send(
                    (
                        "attach",
                        host._config,
                        host._objects,
                        len(host._lanes),
                        columns_desc,
                    )
                )
                spawned.append(worker)
            for worker in spawned:
                status, payload = self._recv(worker)
                if status != "ok":  # pragma: no cover - attach never raises
                    raise RuntimeError(f"worker attach failed: {payload}")
                if isinstance(payload, tuple) and payload[1]:
                    self._shm_fallbacks += 1
        finally:
            # Mappings and open descriptors outlive the name: once every
            # worker holds its attachment the name can go, so a crash
            # can't leak it (shm unlink / file unlink alike).
            if columns_store is not None:
                columns_store.close()

    def close(self) -> None:
        for worker in self._workers:
            if worker is None or not worker.alive:
                continue
            try:
                worker.conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            if worker is None:
                continue
            worker.proc.join(_JOIN_S)
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                worker.proc.terminate()
                worker.proc.join(_JOIN_S)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers = []
        self._ops = []
        self._ops_base = 0
        self._started = False

    # -- mutation log ---------------------------------------------------

    def record_mutation(self, op) -> None:
        if self._started:
            self._ops.append(op)

    def _ops_for(self, worker: _Worker) -> list[tuple]:
        return self._ops[worker.synced - self._ops_base :]

    def _compact_ops(self) -> None:
        live = [w.synced for w in self._workers if w is not None and w.alive]
        if not live:
            return
        floor = min(live)
        drop = floor - self._ops_base
        if drop > 0:
            del self._ops[:drop]
            self._ops_base = floor

    # -- plumbing -------------------------------------------------------

    def _mark_dead(self, worker: _Worker) -> None:
        if not worker.alive:
            return
        worker.alive = False
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _fail(self, worker: _Worker) -> None:
        self._mark_dead(worker)
        self._failures += 1

    def _cancel_worker(self, worker: _Worker) -> None:
        """Deadline cancellation: a CPU-bound work item cannot be
        interrupted cooperatively across the process boundary, so the
        honest cancellation is to kill the worker (its late reply would
        desync the pipe anyway) and let the next dispatch respawn it
        with a fresh snapshot."""
        self._timeouts += 1
        self._mark_dead(worker)
        worker.proc.terminate()

    def _retire(self, worker: _Worker) -> None:
        """A worker answered with an error: its replica may be mid-
        mutation (ops replay before compute), so retire it rather than
        risk desync — the next dispatch respawns it clean."""
        self._errors += 1
        self._mark_dead(worker)
        worker.proc.terminate()

    def _recv(self, worker: _Worker, scope=None):
        """Receive one reply, raising :class:`_WorkerDied` if the
        process ends first (the pipe may still hold a buffered reply,
        which is drained) and :class:`ExecutionTimeout` if ``scope``
        expires first."""
        hooks.fire("process.recv", worker=worker)
        while True:
            # Deadline first, even when a reply is already buffered: a
            # lapsed budget means the caller must take the deadline
            # path now, not deliver late.
            if scope is not None:
                scope.check()
            if worker.conn.poll(_POLL_S):
                try:
                    return worker.conn.recv()
                except (EOFError, OSError):
                    raise _WorkerDied from None
            if not worker.proc.is_alive():
                if worker.conn.poll(0):
                    try:
                        return worker.conn.recv()
                    except (EOFError, OSError):
                        raise _WorkerDied from None
                raise _WorkerDied

    # -- poison quarantine ----------------------------------------------

    @staticmethod
    def _spec_key(spec) -> tuple:
        """Content signature of one spec for the quarantine ledger."""
        return (
            type(spec).__name__,
            point_key(spec.q),
            spec.threshold,
            spec.tolerance,
            getattr(spec, "k", None),
            getattr(spec, "radius", None),
        )

    def _suspect(self, specs) -> None:
        """A worker died holding these specs: raise their suspicion,
        quarantining any that has now killed ``_QUARANTINE_KILLS``
        workers."""
        for spec in specs:
            key = self._spec_key(spec)
            count = self._poison.get(key, 0) + 1
            self._poison[key] = count
            if count >= _QUARANTINE_KILLS:
                self._quarantined.add(key)

    def _is_quarantined(self, item) -> bool:
        if not self._quarantined:
            return False
        return any(self._spec_key(s) in self._quarantined for s in item.specs)

    def _call_ok(self, worker: _Worker, message: tuple, synced_to: int):
        """Send + receive one request; updates the worker's sync mark on
        success, raises :class:`_WorkerDied` on worker death."""
        try:
            worker.conn.send(message)
        except (OSError, ValueError):
            raise _WorkerDied from None
        status, payload = self._recv(worker)
        if status != "ok":
            raise RuntimeError(
                f"worker for lane {worker.proc.name} failed: {payload}"
            )
        worker.synced = synced_to
        return payload

    # -- execution ------------------------------------------------------

    def run_pnn(self, items, staged, snapshot) -> list:
        """Dispatch each item to its lane's worker; a dead worker's item
        is transparently re-executed in-process (``staged``/``snapshot``
        are ignored — workers filter against their resident replicas).

        Quarantined specs never reach a worker (their item runs on the
        serial in-process path); an active host deadline terminates
        workers still computing past the budget and raises
        :class:`ExecutionTimeout
        <repro.core.engine.executors.base.ExecutionTimeout>` — the pool
        heals by respawn on the next dispatch.
        """
        scope = getattr(self._host, "_cancel_scope", None)
        if scope is not None:
            scope.check()
        hooks.fire(
            "executor.dispatch", backend=self.name, kind="pnn", executor=self
        )
        self.ensure_started()
        self._dispatches += 1
        top = self._ops_base + len(self._ops)
        outcomes: list = [None] * len(items)
        inflight = []
        for position, item in enumerate(items):
            if self._is_quarantined(item):
                # Poison rule: a spec that killed a worker twice runs
                # in-process forever after (lane-mates ride along — the
                # item is the dispatch unit and the path is identical).
                self._quarantine_hits += 1
                outcomes[position] = self._host._run_pnn_item_local(item)
                continue
            worker = self._workers[item.lane]
            if worker is None or not worker.alive:
                outcomes[position] = self._retry_inline(item)
                continue
            try:
                hooks.fire(
                    "process.send", lane=item.lane, kind="pnn", worker=worker
                )
                worker.conn.send(
                    ("pnn", self._ops_for(worker), item.specs, item.strategy)
                )
                inflight.append((position, item, worker))
            except (OSError, ValueError):
                self._fail(worker)
                self._suspect(item.specs)
                outcomes[position] = self._retry_inline(item)
        timed_out = False
        for position, item, worker in inflight:
            if timed_out:
                self._cancel_worker(worker)
                continue
            try:
                status, payload = self._recv(worker, scope)
            except ExecutionTimeout:
                self._cancel_worker(worker)
                timed_out = True
                continue
            except _WorkerDied:
                self._fail(worker)
                self._suspect(item.specs)
                outcomes[position] = self._retry_inline(item)
                continue
            if status != "ok":
                self._retire(worker)
                outcomes[position] = self._retry_inline(item)
                continue
            worker.synced = top
            outcomes[position] = payload
        self._compact_ops()
        if timed_out:
            raise ExecutionTimeout(
                "deadline expired waiting on worker replies"
            )
        return outcomes

    def _retry_inline(self, item):
        """Graceful degradation: run a dead worker's item through the
        host's in-process path (same pipeline, bit-identical answers)."""
        self._retries += 1
        return self._host._run_pnn_item_local(item)

    def run_sweeps(self, items, queries, mindist, maxdist) -> None:
        """Fan sweep items out across live workers, which write their
        columns into a per-batch shared output segment; anything a dead
        (or not-yet-started) pool can't take runs inline.  A failed
        readback attach recomputes the columns inline (same floats);
        an expired host deadline cancels in-flight workers and raises
        :class:`ExecutionTimeout
        <repro.core.engine.executors.base.ExecutionTimeout>`."""
        scope = getattr(self._host, "_cancel_scope", None)
        if not self._started or not any(
            w is not None and w.alive for w in self._workers
        ):
            # No pool yet: don't pay a spawn for a sweep (numpy releases
            # the GIL, so inline is what the thread backend would do on
            # one runnable thread anyway).
            for item in items:
                if scope is not None:
                    scope.check()
                shard_min, shard_max = self._host._run_sweep_item(item, queries)
                mindist[:, item.cols] = shard_min
                maxdist[:, item.cols] = shard_max
            return
        hooks.fire(
            "executor.dispatch", backend=self.name, kind="sweep", executor=self
        )
        self.ensure_started()
        self._dispatches += 1
        top = self._ops_base + len(self._ops)
        out_shm, out_desc = export_arrays(
            {
                "mindist": np.zeros(mindist.shape),
                "maxdist": np.zeros(maxdist.shape),
            }
        )
        try:
            fallback: list = []
            inflight = []
            carried: set = set()
            alive = [w for w in self._workers if w is not None and w.alive]
            for position, item in enumerate(items):
                worker = alive[position % len(alive)] if alive else None
                if worker is None or not worker.alive:
                    fallback.append(item)
                    continue
                # Round-robin can hand one worker several items in a
                # single dispatch; only the first message may carry the
                # pending ops suffix (synced advances on recv, so a
                # second send would re-derive and re-apply the same
                # mutations on the worker replica).
                ops = () if id(worker) in carried else self._ops_for(worker)
                try:
                    hooks.fire(
                        "process.send", lane=None, kind="sweep", worker=worker
                    )
                    worker.conn.send(("sweep", ops, queries, item.cols, out_desc))
                    carried.add(id(worker))
                    inflight.append((item, worker))
                except (OSError, ValueError):
                    self._fail(worker)
                    fallback.append(item)
            done = []
            timed_out = False
            for item, worker in inflight:
                if timed_out:
                    self._cancel_worker(worker)
                    continue
                try:
                    status, payload = self._recv(worker, scope)
                except ExecutionTimeout:
                    self._cancel_worker(worker)
                    timed_out = True
                    continue
                except _WorkerDied:
                    self._fail(worker)
                    fallback.append(item)
                    continue
                if status != "ok":
                    self._retire(worker)
                    fallback.append(item)
                    continue
                worker.synced = top
                done.append(item)
            if timed_out:
                raise ExecutionTimeout(
                    "deadline expired waiting on sweep replies"
                )
            if done:
                try:
                    out_attach, views = attach_arrays(out_desc)
                except Exception:
                    # Readback attach failed (injected or real): the
                    # workers' columns are unreachable — recompute them
                    # inline, same arithmetic, same floats.
                    self._shm_fallbacks += 1
                    fallback.extend(done)
                else:
                    try:
                        for item in done:
                            mindist[:, item.cols] = views["mindist"][:, item.cols]
                            maxdist[:, item.cols] = views["maxdist"][:, item.cols]
                    finally:
                        del views
                        out_attach.close()
            for item in fallback:
                self._retries += 1
                shard_min, shard_max = self._host._run_sweep_item(item, queries)
                mindist[:, item.cols] = shard_min
                maxdist[:, item.cols] = shard_max
        finally:
            release_segment(out_shm)
        self._compact_ops()

    # -- test hooks & observability ------------------------------------

    def inject_crash(self, lane: int) -> None:
        """Test hook: arm lane ``lane``'s worker to exit the instant it
        receives its next work item — the parent then discovers the
        death mid-batch, exactly like a real crash between send and
        reply, and must recover by in-process retry + respawn."""
        worker = self._workers[lane] if self._started else None
        if worker is None or not worker.alive:
            raise RuntimeError(f"no live worker for lane {lane}")
        worker.conn.send(("die",))

    def stats(self) -> dict:
        return {
            "backend": self.name,
            "workers": self.n_workers,
            "started": self._started,
            "alive": sum(
                1
                for w in self._workers
                if w is not None and w.alive and w.proc.is_alive()
            ),
            "dispatches": self._dispatches,
            "worker_failures": self._failures,
            "respawns": self._respawns,
            "in_process_retries": self._retries,
            "pending_ops": len(self._ops),
            "timeouts": self._timeouts,
            "worker_errors": self._errors,
            "shm_fallbacks": self._shm_fallbacks,
            "quarantined": len(self._quarantined),
            "quarantine_hits": self._quarantine_hits,
        }
