"""Execution backends for the sharded engine (DESIGN.md §13).

The engine *plans* batches as serialized work items; a backend from
this package decides where they run — inline
(:class:`~repro.core.engine.executors.serial.SerialExecutor`), on a
thread pool
(:class:`~repro.core.engine.executors.thread.ThreadExecutor`), or on a
persistent spawn-based worker pool with shared-memory coordinate
segments
(:class:`~repro.core.engine.executors.process.ProcessExecutor`).
All three produce bit-identical answers; they differ only in where the
work happens and which caches stay warm.
"""

from __future__ import annotations

from repro.core.engine.executors.base import (
    BACKENDS,
    ExecutorBase,
    PnnItem,
    SweepItem,
    free_threaded,
    resolve_backend,
)
from repro.core.engine.executors.process import ProcessExecutor
from repro.core.engine.executors.serial import SerialExecutor
from repro.core.engine.executors.thread import ThreadExecutor

__all__ = [
    "BACKENDS",
    "ExecutorBase",
    "PnnItem",
    "ProcessExecutor",
    "SerialExecutor",
    "SweepItem",
    "ThreadExecutor",
    "free_threaded",
    "make_executor",
    "resolve_backend",
]

_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(backend: str, host) -> ExecutorBase:
    """Instantiate the backend named by a *resolved* ``executor=`` knob
    (``"auto"`` must already have gone through
    :func:`~repro.core.engine.executors.base.resolve_backend`)."""
    try:
        cls = _EXECUTORS[backend]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {backend!r}: "
            f"expected one of {tuple(_EXECUTORS)}"
        ) from None
    return cls(host)
