"""Executor substrate: typed work items + the backend contract.

The plan/execute split (DESIGN.md §13): the sharded engine *plans* a
batch as serialized work items — :class:`SweepItem` per shard,
:class:`PnnItem` per lane — and an executor decides *where* they run:

* :class:`~repro.core.engine.executors.serial.SerialExecutor` — inline,
  the bit-identity reference;
* :class:`~repro.core.engine.executors.thread.ThreadExecutor` — the
  shared thread pool (sweeps overlap because numpy releases the GIL;
  the whole pipeline overlaps on free-threaded builds);
* :class:`~repro.core.engine.executors.process.ProcessExecutor` —
  persistent spawn workers with resident per-lane caches attached to a
  shared-memory coordinate segment.

Items carry plain data (spec tuples, column index arrays), never
closures, so the same item pickles to a worker or runs in-process via
the host callbacks ``_run_sweep_item`` / ``_run_pnn_item`` — which is
also how crash recovery re-executes a dead worker's items without a
special path.
"""

from __future__ import annotations

import os
import pickle
import sys
import sysconfig
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BACKENDS",
    "CancelScope",
    "ExecutionTimeout",
    "ExecutorBase",
    "PnnItem",
    "SweepItem",
    "check_cancel",
    "free_threaded",
    "resolve_backend",
]

BACKENDS = ("auto", "serial", "thread", "process")


class ExecutionTimeout(TimeoutError):
    """A deadline expired while work items were executing.

    Raised by any backend when the host's active
    :class:`CancelScope` runs out mid-dispatch; the partial work is
    abandoned (the process backend terminates in-flight workers — the
    only true cancellation for a CPU-bound item — and respawns them on
    the next dispatch).  The service layer maps this to its retry /
    ε-early-answer policy.
    """


class CancelScope:
    """A monotonic deadline that cooperating loops poll.

    Engines expose it via ``with engine.deadline(seconds):`` — the scope
    lands on ``host._cancel_scope`` and every backend (and the C-PNN
    per-query loops) calls :meth:`check` at item boundaries.  The scope
    is deliberately tiny: no threads, no signals, just a timestamp, so
    checking it costs one ``time.monotonic()`` call.
    """

    __slots__ = ("deadline", "_cancelled")

    def __init__(self, deadline: float | None) -> None:
        self.deadline = deadline
        self._cancelled = False

    @classmethod
    def after(cls, seconds: float) -> "CancelScope":
        return cls(time.monotonic() + float(seconds))

    def cancel(self) -> None:
        """Expire the scope immediately (caller-initiated abort)."""
        self._cancelled = True

    def remaining(self) -> float:
        """Seconds left (``inf`` for a deadline-less scope, ``0.0``
        once expired or cancelled)."""
        if self._cancelled:
            return 0.0
        if self.deadline is None:
            return float("inf")
        return max(0.0, self.deadline - time.monotonic())

    def expired(self) -> bool:
        if self._cancelled:
            return True
        return self.deadline is not None and time.monotonic() >= self.deadline

    def check(self) -> None:
        """Raise :class:`ExecutionTimeout` if the scope has expired."""
        if self.expired():
            raise ExecutionTimeout(
                "deadline expired while executing work items"
            )


def check_cancel(host) -> None:
    """Poll ``host``'s active cancel scope, if any.

    The hosts (engines, lanes) carry the scope as a plain
    ``_cancel_scope`` attribute so the hot path without a deadline pays
    one ``getattr`` and nothing else.
    """
    scope = getattr(host, "_cancel_scope", None)
    if scope is not None:
        scope.check()


@dataclass(frozen=True, eq=False)
class SweepItem:
    """One shard's slice of a batch MBR sweep.

    ``cols`` are the shard's global object-order positions: the item's
    output is columns ``cols`` of the global ``(B, N)``
    mindist/maxdist matrices.  Serialized (shard id + index array), so
    a worker can compute it from its resident coordinate arrays via
    :meth:`~repro.index.filtering.BatchMbrFilter.matrices_rows`.
    """

    shard: int
    cols: np.ndarray


@dataclass(frozen=True, eq=False)
class PnnItem:
    """One lane's slice of a C-PNN batch.

    ``indices`` are the positions of ``specs`` in the caller's batch
    (for scattering results back); ``lane`` is the content-hash
    affinity lane every spec in the item maps to.
    """

    lane: int
    indices: tuple[int, ...]
    specs: tuple
    strategy: str


def free_threaded() -> bool:
    """True on a free-threaded (no-GIL) CPython build with the GIL
    actually disabled."""
    checker = getattr(sys, "_is_gil_enabled", None)
    if checker is not None:
        return not checker()
    return bool(sysconfig.get_config_var("Py_GIL_DISABLED"))


def _spawnable(config) -> bool:
    """Whether the config survives the spawn boundary (closures in
    ``chain_factory``/``pipeline`` don't — such configs fall back to
    threads under ``executor="auto"``)."""
    try:
        pickle.dumps(config)
        return True
    except Exception:
        return False


def resolve_backend(config, *, parallel: bool = True, override: str | None = None) -> str:
    """Resolve the ``executor=`` knob to a concrete backend name.

    ``override`` (an engine-constructor argument) beats the config
    field.  ``"auto"`` picks: ``serial`` for non-parallel hosts (the
    single engine), ``thread`` on free-threaded builds (lanes already
    scale there) or when processes can't help (single core, unpicklable
    config), else ``process`` — the only backend that buys C-PNN
    verification real cores on a GIL build.
    """
    requested = override if override is not None else config.executor
    if requested not in BACKENDS:
        raise ValueError(
            f"unknown executor {requested!r}: expected one of {BACKENDS}"
        )
    if requested != "auto":
        return requested
    if not parallel:
        return "serial"
    if free_threaded():
        return "thread"
    if (os.cpu_count() or 1) >= 2 and _spawnable(config):
        return "process"
    return "thread"


class ExecutorBase:
    """The backend contract the sharded engine programs against.

    ``host`` is the owning :class:`~repro.core.engine.sharded.ShardedEngine`;
    backends that run items in-process call back into
    ``host._run_sweep_item(item, queries)`` and
    ``host._run_pnn_item(item, staged, snapshot)``.
    """

    name = "?"

    def __init__(self, host) -> None:
        self._host = host

    def run_sweeps(self, items, queries, mindist, maxdist) -> None:
        """Execute sweep items, scattering each item's columns into the
        global ``(B, N)`` output matrices in place."""
        raise NotImplementedError

    def run_pnn(self, items, staged, snapshot) -> list:
        """Execute C-PNN items; returns one ``(BatchResult, seconds)``
        per item, aligned with ``items``.  ``staged``/``snapshot`` are
        the parent-reconciled filter results (ignored by backends whose
        workers filter for themselves)."""
        raise NotImplementedError

    def record_mutation(self, op) -> None:
        """Observe one registry mutation (backends with remote replicas
        log it; others ignore it)."""

    def close(self) -> None:
        """Release pools/segments (idempotent; the executor stays
        usable — resources are recreated on the next dispatch)."""

    def stats(self) -> dict:
        return {"backend": self.name}
