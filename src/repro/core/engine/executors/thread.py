"""Thread-pool execution: PR 5's lanes behind the executor contract.

Per-shard sweeps overlap because numpy releases the GIL for the matrix
arithmetic; the Python-heavy C-PNN verification only overlaps on
free-threaded (3.13t+) builds, which ``executor="auto"`` detects — on
GIL builds the process backend is the one that buys verification real
cores (DESIGN.md §13).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout

from repro import hooks
from repro.core.engine.executors.base import (
    ExecutionTimeout,
    ExecutorBase,
    check_cancel,
)

__all__ = ["ThreadExecutor"]


class ThreadExecutor(ExecutorBase):
    """Run work items on a lazily created shared thread pool.

    Single-item dispatches (and ``max_workers == 1`` hosts) run inline
    — same bits, no pool round-trip.  Distinct items never share
    mutable state (disjoint output columns, disjoint lanes), so no
    locks are needed.  When the host carries an active deadline scope,
    result collection waits at most the remaining budget; not-started
    items are cancelled and :class:`ExecutionTimeout
    <repro.core.engine.executors.base.ExecutionTimeout>` propagates
    (already-running threads also poll the scope inside the C-PNN
    loops, so they unwind on their own).
    """

    name = "thread"

    def __init__(self, host) -> None:
        super().__init__(host)
        self._pool: ThreadPoolExecutor | None = None

    def _map(self, thunks: list) -> list:
        scope = getattr(self._host, "_cancel_scope", None)
        if len(thunks) <= 1 or self._host._max_workers <= 1:
            results = []
            for thunk in thunks:
                check_cancel(self._host)
                results.append(thunk())
            return results
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._host._max_workers,
                thread_name_prefix="repro-shard",
            )
        futures = [self._pool.submit(thunk) for thunk in thunks]
        results = []
        try:
            for future in futures:
                if scope is None:
                    results.append(future.result())
                else:
                    try:
                        results.append(future.result(timeout=scope.remaining()))
                    except _FutureTimeout:
                        raise ExecutionTimeout(
                            "deadline expired waiting on thread-pool items"
                        ) from None
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def run_sweeps(self, items, queries, mindist, maxdist) -> None:
        hooks.fire(
            "executor.dispatch", backend=self.name, kind="sweep", executor=self
        )

        def sweep(item):
            shard_min, shard_max = self._host._run_sweep_item(item, queries)
            mindist[:, item.cols] = shard_min
            maxdist[:, item.cols] = shard_max

        self._map([(lambda it=item: sweep(it)) for item in items])

    def run_pnn(self, items, staged, snapshot) -> list:
        hooks.fire(
            "executor.dispatch", backend=self.name, kind="pnn", executor=self
        )
        return self._map(
            [
                (lambda it=item: self._host._run_pnn_item(it, staged, snapshot))
                for item in items
            ]
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def stats(self) -> dict:
        return {
            "backend": self.name,
            "max_workers": self._host._max_workers,
            "pool_live": self._pool is not None,
        }
