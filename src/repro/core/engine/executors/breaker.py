"""Circuit breaker: degrade the backend chain when the pool is sick.

A worker pool that keeps losing workers is worse than no pool: every
dispatch pays spawn + attach + retry for answers the inline path would
have produced directly.  The breaker watches dispatch health at the
:class:`~repro.core.engine.sharded.ShardedEngine` level and walks the
degradation chain ``process → thread → serial`` (starting from the
configured backend) after ``threshold`` consecutive unhealthy
dispatches.  Once degraded, ``probe_after`` consecutive healthy
dispatches earn one *probe*: a single dispatch routed at the next level
up.  A healthy probe heals one level; a sick one re-arms the streak.

Health is judged by the engine, not the backend: a dispatch is
unhealthy when the backend raised, or when its failure counters moved
(worker deaths absorbed by inline retry still count — the answers were
right, but the pool wasn't).  :class:`ExecutionTimeout
<repro.core.engine.executors.base.ExecutionTimeout>` is deliberately
*not* a health verdict — a caller-imposed deadline says nothing about
the pool — so those dispatches call :meth:`CircuitBreaker.abort`.

Bit-identity is untouched by any of this: every level of the chain runs
the same pipeline (DESIGN.md §13); the breaker only moves *where*.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker", "degradation_chain"]


def degradation_chain(configured: str) -> tuple[str, ...]:
    """The fallback order starting at ``configured`` (resolved name)."""
    order = ("process", "thread", "serial")
    if configured not in order:
        raise ValueError(f"unknown backend {configured!r}")
    return order[order.index(configured):]


class CircuitBreaker:
    """Consecutive-failure degradation with probe-based healing."""

    def __init__(
        self, configured: str, *, threshold: int = 3, probe_after: int = 8
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if probe_after < 1:
            raise ValueError("probe_after must be >= 1")
        self._chain = degradation_chain(configured)
        self._threshold = int(threshold)
        self._probe_after = int(probe_after)
        self._level = 0
        self._failures = 0
        self._streak = 0
        self._probing = False
        self._trips = 0
        self._heals = 0

    @property
    def backend(self) -> str:
        """The backend the *next* non-probe dispatch runs on."""
        return self._chain[self._level]

    @property
    def configured(self) -> str:
        return self._chain[0]

    @property
    def degraded(self) -> bool:
        return self._level > 0

    def begin(self) -> str:
        """Pick the backend for one dispatch (may start a heal probe)."""
        if (
            self._level > 0
            and not self._probing
            and self._streak >= self._probe_after
        ):
            self._probing = True
        if self._probing:
            return self._chain[self._level - 1]
        return self._chain[self._level]

    def record(self, healthy: bool) -> str | None:
        """Report the dispatch begun by :meth:`begin`.

        Returns ``"degraded"`` / ``"healed"`` when the level moved (so
        the engine can close a pool it just walked away from), else
        ``None``.
        """
        if self._probing:
            self._probing = False
            self._streak = 0
            self._failures = 0
            if healthy:
                self._level -= 1
                self._heals += 1
                return "healed"
            return None
        if healthy:
            self._streak += 1
            self._failures = 0
            return None
        self._failures += 1
        self._streak = 0
        if (
            self._failures >= self._threshold
            and self._level < len(self._chain) - 1
        ):
            self._level += 1
            self._failures = 0
            self._trips += 1
            return "degraded"
        return None

    def abort(self) -> None:
        """The dispatch ended without a health verdict (deadline
        expiry): forget any probe, keep every counter."""
        self._probing = False

    def snapshot(self) -> dict:
        """JSON-friendly state for ``stats()`` / ``explain()``."""
        if self._level == 0:
            state = "closed"
        elif self._probing:
            state = "probing"
        else:
            state = "degraded"
        return {
            "state": state,
            "configured": self._chain[0],
            "active": self.backend,
            "chain": list(self._chain),
            "consecutive_failures": self._failures,
            "healthy_streak": self._streak,
            "trips": self._trips,
            "heals": self._heals,
        }
