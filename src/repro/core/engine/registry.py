"""Object registry: storage, key bookkeeping, and the mutation contract.

This module owns the engine's *object order* (the sequence every other
structure mirrors: batch-filter rows, k-NN/range records, merged shard
candidates) plus the incremental-maintenance bookkeeping that rides on
it — the lazy key→position map and the deferred table-cache
invalidation queue.  The single-query R-tree op queue lives with the
filter stage (:mod:`repro.core.engine.filtering`).

.. _mutation-contract:

The mutation contract
---------------------

This is the **canonical statement** of the dynamic-update API shared by
:class:`~repro.core.engine.UncertainEngine` and
:class:`~repro.core.engine.sharded.ShardedEngine` (tested in one place,
``tests/core/test_mutation_contract.py``, against both):

* ``insert(obj)`` raises :class:`ValueError` when an object with the
  same key is already present (keys identify objects for ``remove``,
  so a silent duplicate would leave a shadowed object behind the first
  removal) and when ``obj``'s dimensionality differs from the resident
  objects'.
* ``remove(key)`` returns ``True`` when the key was present and
  ``False`` when it was not — removal is an idempotent "make absent"
  and a missing key is an answerable outcome, not a programming error.
  The engine may become empty.
* ``replace(key, obj)`` raises :class:`KeyError` when ``key`` is not
  present — replacement *asserts* the key exists (the dead-reckoning
  setting: a report for an untracked object is a protocol violation,
  not a no-op).  It raises :class:`ValueError` when ``obj`` carries a
  *different* key that collides with another resident object, or on a
  dimensionality mismatch.  On success the object keeps its position
  in the engine's object order.

The asymmetry between ``remove`` (``False``) and ``replace``
(``KeyError``) is deliberate: ``remove`` is a set-subtraction whose
caller often cannot know whether the key is still live, while
``replace`` is an in-place *update* whose caller claims it is.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

__all__ = ["InvalidationQueueMixin", "ObjectRegistryMixin"]


class InvalidationQueueMixin:
    """Deferred table-cache invalidation, shared by engines and lanes.

    Hosts provide ``_table_cache`` (a
    :class:`~repro.core.batch.TableCache` or ``None``) and a
    ``_pending_invalidation`` list this mixin initialises.
    """

    def _init_invalidation_queue(self) -> None:
        #: Deferred table-cache invalidation: each mutation queues its
        #: MBR(s); the next C-PNN batch folds the whole queue into the
        #: cache with one vectorised sweep (exact per-box tests, no
        #: per-update numpy overhead).  See DESIGN.md §11.
        self._pending_invalidation: list[tuple] = []

    def _queue_invalidation(self, obj) -> None:
        """Queue one mutation's MBR for the deferred table-cache sweep.

        A cached table for point ``q`` stays exact across an
        insert/removal of ``obj`` unless ``obj`` belongs to (insert) or
        belonged to (remove) ``q``'s candidate set — equivalently,
        unless ``mindist(obj, q) <= f_min(q)``; DESIGN.md §11 proves
        both directions.  Everything else survives with its
        distributions and matrices warm.  Cached distance distributions
        are pure functions of (object, point) and are never touched
        here; :meth:`ObjectRegistryMixin.remove` evicts only the
        removed object's entries.
        """
        if self._table_cache is not None:
            mbr = obj.mbr
            self._pending_invalidation.append((mbr.lows, mbr.highs))

    def _flush_table_invalidations(self) -> None:
        """Fold queued mutation MBRs into the table cache, one sweep.

        Must run before any table-cache read; the C-PNN batch executor
        (the only reader) and ``explain`` call it.
        """
        if self._table_cache is None or not self._pending_invalidation:
            return
        boxes = self._pending_invalidation
        self._pending_invalidation = []
        self._table_cache.invalidate_boxes(
            np.array([lows for lows, _ in boxes], dtype=float),
            np.array([highs for _, highs in boxes], dtype=float),
        )


class ObjectRegistryMixin(InvalidationQueueMixin):
    """Object storage plus the dynamic-update primitives.

    Mutations are incrementally maintained, no rebuilds (DESIGN.md
    §11): the R-tree absorbs insert/delete through the filter stage's
    deferred op queue, the whole-batch MBR filter appends/masks
    coordinate rows, and the table cache drops only the query points
    the mutated object's MBR can affect.  See the module docstring for
    the :ref:`mutation contract <mutation-contract>`.
    """

    def _init_registry(self, objects: Sequence) -> None:
        self._objects = list(objects)
        dims = {obj.mbr.dim for obj in self._objects}
        if len(dims) > 1:
            raise ValueError(
                f"all objects must share one dimensionality, got {sorted(dims)}"
            )
        #: Parallel list of object keys (same order as ``_objects``):
        #: O(1) duplicate detection plus C-level victim lookup on
        #: ``remove`` — an update stream must not pay a Python-level
        #: attribute-access scan per removal.
        self._key_list = [obj.key for obj in self._objects]
        self._key_set = set(self._key_list)
        #: Lazy key→position map serving the O(1) lookups of
        #: :meth:`replace`; ``None`` means stale (positions shifted by
        #: a removal).  Appends and in-place replacements keep it
        #: valid, so a dead-reckoning stream builds it once.
        self._key_index: dict[Hashable, int] | None = None
        if len(self._key_set) != len(self._key_list):
            seen: set = set()
            duplicate = next(
                k for k in self._key_list if k in seen or seen.add(k)
            )
            raise ValueError(
                f"duplicate object key {duplicate!r}: keys identify objects "
                "for remove(), so they must be unique"
            )
        self._init_invalidation_queue()

    # ------------------------------------------------------------------

    @property
    def objects(self) -> tuple:
        """Snapshot of the object set (internally a mutable list)."""
        return tuple(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def _position_of(self, key: Hashable) -> int | None:
        """Position of ``key`` in the object order, via the lazy map."""
        if key not in self._key_set:
            return None
        if self._key_index is None:
            self._key_index = {k: i for i, k in enumerate(self._key_list)}
        return self._key_index[key]

    def object_for(self, key: Hashable):
        """The resident object identified by ``key``, or ``None``.

        O(1) via the lazy key→position map.  The continuous tier uses
        this to capture an object's MBR before forwarding a mutation
        (:class:`~repro.continuous.monitor.ContinuousMonitor`); it is
        equally useful to any caller that tracks objects by key.
        """
        index = self._position_of(key)
        return None if index is None else self._objects[index]

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------

    def insert(self, obj) -> None:
        """Add an uncertain object; later queries see it immediately.

        Raises :class:`ValueError` if an object with the same key is
        already present (see the :ref:`mutation contract
        <mutation-contract>`).
        """
        if obj.key in self._key_set:
            raise ValueError(
                f"duplicate object key {obj.key!r}: remove() the existing "
                "object before inserting its replacement"
            )
        if self._objects and obj.mbr.dim != self._objects[0].mbr.dim:
            raise ValueError("object dimensionality mismatch")
        was_empty = not self._objects
        self._objects.append(obj)
        self._key_list.append(obj.key)
        self._key_set.add(obj.key)
        if self._key_index is not None:
            self._key_index[obj.key] = len(self._key_list) - 1
        self._maintain_insert(obj, was_empty)
        self._queue_invalidation(obj)

    def remove(self, key: Hashable) -> bool:
        """Remove the object with identifier ``key``; True if found.

        Returns ``False`` — never raises — when the key is absent (see
        the :ref:`mutation contract <mutation-contract>`).  The engine
        may become empty, in which case the legacy ``query`` entry
        points raise until an object is inserted again (the ``execute``
        façade returns empty results instead, DESIGN.md §8).
        """
        if self._key_index is not None:
            position = self._key_index.get(key)
            if position is None:
                return False
            index = position
        else:
            try:
                index = self._key_list.index(key)
            except ValueError:
                return False
        victim = self._objects[index]
        del self._objects[index]
        del self._key_list[index]
        self._key_set.discard(key)
        self._key_index = None  # later positions shifted
        self._maintain_remove(victim, index)
        self._queue_invalidation(victim)
        if self._distribution_cache is not None:
            self._distribution_cache.evict_object(victim)
        if not self._objects:
            # Drained: reset the last maintenance structures holding
            # geometry (DESIGN.md §11 — "every maintenance structure
            # resets").  A refill may bring objects of a *different*
            # dimensionality, so queued 1-D invalidation boxes or
            # cached 1-D tables must not survive into a 2-D world.
            self._pending_invalidation.clear()
            if self._table_cache is not None:
                self._table_cache.clear()
        return True

    def replace(self, key: Hashable, obj) -> None:
        """Replace the object identified by ``key`` with ``obj``, in place.

        The dead-reckoning primitive (Section I): a position report
        swaps a stale uncertainty region for a fresh one.  Semantically
        equivalent to ``remove(key)`` + ``insert(obj)`` except that the
        object keeps its position in the engine's object order, which
        lets every maintenance structure update in O(1)-ish work: the
        batch filter overwrites one coordinate row in place, the
        key→position map stays valid, and both the old and the new MBR
        are queued for the deferred table-cache sweep (exact per-box
        candidate tests, DESIGN.md §11).

        ``obj`` may keep the same key or bring a new one; a new key
        must not collide with another object's.  Raises
        :class:`KeyError` when ``key`` is not present (see the
        :ref:`mutation contract <mutation-contract>`).
        """
        index = self._position_of(key)
        if index is None:
            raise KeyError(key)
        if obj.key != key and obj.key in self._key_set:
            raise ValueError(
                f"duplicate object key {obj.key!r}: remove() the existing "
                "object before inserting its replacement"
            )
        if obj.mbr.dim != self._objects[0].mbr.dim:
            raise ValueError("object dimensionality mismatch")
        victim = self._objects[index]
        self._objects[index] = obj
        if obj.key != key:
            self._key_list[index] = obj.key
            self._key_set.discard(key)
            self._key_set.add(obj.key)
            if self._key_index is not None:
                del self._key_index[key]
                self._key_index[obj.key] = index
        self._maintain_replace(victim, obj, index)
        self._queue_invalidation(victim)
        self._queue_invalidation(obj)
        if self._distribution_cache is not None:
            self._distribution_cache.evict_object(victim)
