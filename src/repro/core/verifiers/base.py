"""Verifier interface: cheap algebraic bounds from a subregion table."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.subregions import SubregionTable

__all__ = ["BoundUpdate", "Verifier"]


@dataclass(frozen=True)
class BoundUpdate:
    """Bounds a verifier produced for every candidate (row-aligned with
    the subregion table).  ``None`` means the verifier does not bound
    that side — e.g. RS only produces upper bounds."""

    lower: np.ndarray | None = None
    upper: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.lower is None and self.upper is None:
            raise ValueError("a bound update must bound at least one side")


class Verifier(abc.ABC):
    """A probabilistic verifier in the sense of Section IV.

    Subclasses are stateless; all shared quantities (subregion
    probabilities, edge cdfs, exclusion products) live in the
    :class:`~repro.core.subregions.SubregionTable`, mirroring the
    paper's observation that Y_j values computed by L-SR can be reused
    by U-SR (Appendix I).
    """

    #: Short name used in reports and Figure 12's series.
    name: str = "verifier"

    #: Position in the default chain; lower ranks run first (Table III
    #: orders verifiers by ascending running cost).
    cost_rank: int = 0

    #: Whether the verifier's bounds hold with certainty.  Certified
    #: bounds are intersected with the running interval and survive
    #: escalation; uncertified ones (e.g. Monte-Carlo confidence
    #: bounds) may classify candidates but are *not* allowed to
    #: constrain later certified tiers — see the chain runner.
    certified: bool = True

    @abc.abstractmethod
    def compute(self, table: SubregionTable) -> BoundUpdate:
        """Bounds for every candidate in ``table`` (vectorised)."""

    def compute_batch(
        self, tables: Sequence[SubregionTable]
    ) -> list[BoundUpdate]:
        """Bounds for every candidate of every table in one sweep.

        The default evaluates :meth:`compute` per table — each call is
        already a handful of whole-matrix numpy operations, and reusing
        it keeps the batch path's arithmetic bit-identical to the
        sequential path (each query's subregion grid has its own shape,
        so stacking tables would change summation order and perturb
        bounds at the ulp level).  The batch chain runner concatenates
        these per-table updates and applies one flat tighten/classify
        sweep across the whole candidate×query matrix.
        """
        return [self.compute(table) for table in tables]

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"
