"""Verifier interface: cheap algebraic bounds from a subregion table."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.subregions import SubregionTable

__all__ = ["BoundUpdate", "Verifier"]


@dataclass(frozen=True)
class BoundUpdate:
    """Bounds a verifier produced for every candidate (row-aligned with
    the subregion table).  ``None`` means the verifier does not bound
    that side — e.g. RS only produces upper bounds."""

    lower: np.ndarray | None = None
    upper: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.lower is None and self.upper is None:
            raise ValueError("a bound update must bound at least one side")


class Verifier(abc.ABC):
    """A probabilistic verifier in the sense of Section IV.

    Subclasses are stateless; all shared quantities (subregion
    probabilities, edge cdfs, exclusion products) live in the
    :class:`~repro.core.subregions.SubregionTable`, mirroring the
    paper's observation that Y_j values computed by L-SR can be reused
    by U-SR (Appendix I).
    """

    #: Short name used in reports and Figure 12's series.
    name: str = "verifier"

    #: Position in the default chain; lower ranks run first (Table III
    #: orders verifiers by ascending running cost).
    cost_rank: int = 0

    @abc.abstractmethod
    def compute(self, table: SubregionTable) -> BoundUpdate:
        """Bounds for every candidate in ``table`` (vectorised)."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"
