"""The Rightmost-Subregion (RS) verifier — Lemma 1 of the paper.

Any object whose distance exceeds ``f_min`` cannot be the nearest
neighbour (some object is certainly within ``f_min``).  Hence the
probability mass an object carries in the rightmost subregion
``S_M = [f_min, f_max]`` bounds its qualification probability from
above:

    p_i.u ≤ 1 − s_iM = D_i(f_min)

Cost: O(|C|) given the subregion table — the cheapest verifier, so it
runs first in the chain.
"""

from __future__ import annotations

from repro.core.subregions import SubregionTable
from repro.core.verifiers.base import BoundUpdate, Verifier

__all__ = ["RightmostSubregionVerifier"]


class RightmostSubregionVerifier(Verifier):
    """Upper-bound verifier using only rightmost-subregion mass."""

    name = "RS"
    cost_rank = 0

    def compute(self, table: SubregionTable) -> BoundUpdate:
        return BoundUpdate(upper=1.0 - table.s_right)
