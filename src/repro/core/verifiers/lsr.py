"""The Lower-Subregion (L-SR) verifier — Lemma 2 / Equation 4.

For each inner subregion ``S_j`` the *subregion qualification
probability* ``q_ij = Pr[X_i is NN | R_i ∈ S_j]`` is bounded from
below by

    q_ij.l = (1 / c_j) · Π_{k≠i, U_k∩S_j≠∅} (1 − D_k(e_j))

(the product is Pr[no object is already inside ``e_j``]; the ``1/c_j``
factor is the exchangeability worst case of Lemma 3 where all ``c_j``
possible objects landed in ``S_j`` together).  Aggregating with the
law of total probability (Equation 4):

    p_i.l = Σ_{j<M} s_ij · q_ij.l

Cost: O(|C|·M).  L-SR raises *lower* bounds, so it is most effective
at small thresholds where objects need to be proven to *satisfy*
(Figure 12's discussion).
"""

from __future__ import annotations

import numpy as np

from repro.core.subregions import SubregionTable
from repro.core.verifiers.base import BoundUpdate, Verifier

__all__ = ["LowerSubregionVerifier"]


class LowerSubregionVerifier(Verifier):
    """Lower-bound verifier from per-subregion exchangeability."""

    name = "L-SR"
    cost_rank = 1

    def compute(self, table: SubregionTable) -> BoundUpdate:
        lower = np.einsum("ij,ij->i", table.s_inner, table.q_lower)
        return BoundUpdate(lower=np.clip(lower, 0.0, 1.0))
