"""Monte-Carlo verifier tier: certified-confidence Hoeffding bounds.

``MCVerifier`` promotes the sampling idea of
:mod:`repro.baselines.montecarlo` from a baseline into a verifier:
it jointly samples every candidate's distance ``T`` times, counts how
often each candidate attains the minimum, and brackets the true
qualification probability with the two-sided Hoeffding deviation

    ε = sqrt( ln(2·|C| / (1 − confidence)) / (2·T) )

union-bounded over the candidate set, so *all* bounds hold
simultaneously with probability at least ``confidence``.

The bounds are statistical, not certain — the verifier declares
``certified = False`` and the chain runner keeps them quarantined:
they may classify candidates (the query contract then holds with the
stated confidence), but they never constrain the certified algebraic
tiers that run after them.

Sampling is deterministic: the generator is seeded from the user seed
mixed with a digest of the table's geometry, so a query answers
identically across runs, executors, and batch compositions (the
per-table stream does not depend on which other queries share the
batch).

When every candidate is a histogram-backed distance distribution, the
``T`` draws per row run through the table's columnar pack —
``rng.uniform(0.0, 1.0, (n, T))`` scaled by the pack's per-row total
masses, inverted by one :meth:`DistributionPack.ppf_many
<repro.uncertainty.columnar.DistributionPack.ppf_many>` call — which
consumes the *identical* generator stream and computes the identical
interpolation the per-row ``Histogram.sample`` loop would (asserted
bit-exactly by tests), so the batched kernel is invisible in the
answers.  Tables without a pack (the analytic fast path) or with
parametric rows keep the row loop.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from repro.core.verifiers.base import BoundUpdate, Verifier

__all__ = ["MCVerifier"]

#: Default trial count — cheap (one argmin over a (|C|, T) matrix)
#: yet enough for ε ≈ 0.03 at 99.9% confidence over ~50 candidates.
DEFAULT_TRIALS = 4096

#: Default simultaneous-coverage level for the Hoeffding bounds.
DEFAULT_CONFIDENCE = 0.999


class MCVerifier(Verifier):
    """Sampling tier with simultaneous Hoeffding confidence bounds."""

    name = "MC"
    # Runs before RS: sampling cost is independent of the subregion
    # grid and the bounds are two-sided, so a confident early exit
    # skips the whole algebraic cascade.
    cost_rank = -1
    certified = False

    def __init__(
        self,
        trials: int = DEFAULT_TRIALS,
        confidence: float = DEFAULT_CONFIDENCE,
        seed: int = 20080199,
    ) -> None:
        if trials < 1:
            raise ValueError("trials must be >= 1")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        self.trials = int(trials)
        self.confidence = float(confidence)
        self.seed = int(seed)

    def epsilon(self, n_candidates: int) -> float:
        """Two-sided deviation, union-bounded over ``n_candidates``."""
        delta = 1.0 - self.confidence
        return math.sqrt(
            math.log(2.0 * max(n_candidates, 1) / delta) / (2.0 * self.trials)
        )

    def _rng(self, table) -> np.random.Generator:
        """Deterministic per-table stream (geometry-keyed)."""
        digest = zlib.crc32(np.ascontiguousarray(table.edges).tobytes())
        digest = zlib.crc32(
            np.array([table.fmin, table.fmax, float(table.size)]).tobytes(),
            digest,
        )
        return np.random.default_rng((self.seed, digest))

    @staticmethod
    def _sampling_pack(table, distributions):
        """The table's columnar pack when batched sampling preserves the
        per-row generator stream, else ``None``.

        The batched path is only stream-identical when every row's
        ``sample`` is the histogram inverse-cdf draw; parametric rows
        consume the generator differently, and analytic tables carry no
        pack at all — both fall back to the row loop.
        """
        from repro.uncertainty.distance import DistanceDistribution

        if not all(
            type(dist).sample is DistanceDistribution.sample
            for dist in distributions
        ):
            return None
        try:
            pack = table.pack
        except (AttributeError, TypeError, ValueError):
            return None
        if pack is None or pack.size != len(distributions):
            return None
        return pack

    def _sample_all(self, table, distributions, rng) -> np.ndarray:
        """The ``(n, T)`` joint distance sample matrix."""
        n = len(distributions)
        pack = self._sampling_pack(table, distributions)
        if pack is not None:
            # One stream draw, one columnar inversion.  uniform(0, m)
            # is 0 + m·u per double, so scaling the (n, T) unit block
            # row-wise by the pack's total masses consumes the exact
            # doubles (in the exact order) the per-row loop would.
            u = rng.uniform(0.0, 1.0, (n, self.trials))
            u *= pack.totals[:, None]
            return pack.ppf_many(u)
        samples = np.empty((n, self.trials))
        for i, dist in enumerate(distributions):
            samples[i] = dist.sample(rng, self.trials)
        return samples

    def compute(self, table) -> BoundUpdate:
        rng = self._rng(table)
        distributions = table.distributions
        n = len(distributions)
        samples = self._sample_all(table, distributions, rng)
        winners = np.argmin(samples, axis=0)
        phat = np.bincount(winners, minlength=n) / float(self.trials)
        eps = self.epsilon(n)
        return BoundUpdate(
            lower=np.clip(phat - eps, 0.0, 1.0),
            upper=np.clip(phat + eps, 0.0, 1.0),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MCVerifier(trials={self.trials}, "
            f"confidence={self.confidence}, seed={self.seed})"
        )
