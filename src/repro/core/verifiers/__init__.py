"""Probabilistic verifiers (Section IV of the paper).

A verifier derives lower and/or upper bounds on qualification
probabilities with algebraic operations only — no integration.  The
three subregion-based verifiers, in ascending cost order (Table III):

========  ==============  =========  ==========================
Verifier  Bound           Cost       Key formula
========  ==============  =========  ==========================
RS        upper           O(|C|)     Lemma 1:  p_i.u ≤ 1 − s_iM
L-SR      lower           O(|C|·M)   Lemma 2 / Equation 4
U-SR      upper           O(|C|·M)   Equation 5 / Equation 4
========  ==============  =========  ==========================

:class:`~repro.core.verifiers.chain.VerifierChain` strings them
together with the classifier exactly as Figure 5 prescribes, stopping
as soon as no candidate is left unknown.
"""

from repro.core.verifiers.base import BoundUpdate, Verifier
from repro.core.verifiers.chain import ChainOutcome, VerifierChain, default_chain
from repro.core.verifiers.lsr import LowerSubregionVerifier
from repro.core.verifiers.mc import MCVerifier
from repro.core.verifiers.rs import RightmostSubregionVerifier
from repro.core.verifiers.usr import UpperSubregionVerifier

__all__ = [
    "BoundUpdate",
    "ChainOutcome",
    "LowerSubregionVerifier",
    "MCVerifier",
    "RightmostSubregionVerifier",
    "UpperSubregionVerifier",
    "Verifier",
    "VerifierChain",
    "default_chain",
]
