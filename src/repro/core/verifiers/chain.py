"""The verification framework of Figure 5: verifiers + classifier loop.

Verifiers run in ascending cost order.  After each one, freshly
computed bounds are intersected into the state (only for still-unknown
objects) and the classifier re-labels.  The chain stops as soon as
every candidate is labelled *satisfy* or *fail* — "it is not always
necessary for all verifiers to be executed" (Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery
from repro.core.verifiers.base import BoundUpdate, Verifier
from repro.core.verifiers.lsr import LowerSubregionVerifier
from repro.core.verifiers.rs import RightmostSubregionVerifier
from repro.core.verifiers.usr import UpperSubregionVerifier

__all__ = ["ChainOutcome", "VerifierChain", "default_chain"]


@dataclass
class ChainOutcome:
    """Diagnostics of one chain execution.

    ``unknown_after`` maps each verifier's name to the fraction of
    candidates still unknown after it ran — the exact series Figure 12
    plots.  Verifiers skipped due to early termination are absent.

    ``probabilistic`` records, per *uncertified* verifier that ran,
    the statistical terms its classifications hold under (trial
    count, Hoeffding deviation, simultaneous confidence) and how many
    candidates it settled.  Empty for fully certified chains.
    """

    unknown_after: dict[str, float] = field(default_factory=dict)
    executed: list[str] = field(default_factory=list)
    probabilistic: dict[str, dict] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """True when verification alone settled every candidate."""
        if not self.unknown_after:
            return False
        return min(self.unknown_after.values()) == 0.0


class VerifierChain:
    """An ordered sequence of verifiers applied with re-classification."""

    def __init__(self, verifiers: Sequence[Verifier]) -> None:
        if not verifiers:
            raise ValueError("a chain needs at least one verifier")
        self._verifiers = tuple(sorted(verifiers, key=lambda v: v.cost_rank))

    @property
    def verifiers(self) -> tuple[Verifier, ...]:
        return self._verifiers

    def run(
        self,
        table: SubregionTable,
        states: CandidateStates,
        query: CPNNQuery,
    ) -> ChainOutcome:
        """Execute the chain until done or all verifiers have run."""
        outcome = ChainOutcome()
        states.classify(query.threshold, query.tolerance)
        for verifier in self._verifiers:
            if states.n_unknown == 0:
                break
            if not verifier.certified:
                update = verifier.compute(table)
                classified = self._apply_uncertified(
                    update, states, query.threshold, query.tolerance
                )
                outcome.executed.append(verifier.name)
                outcome.unknown_after[verifier.name] = states.unknown_fraction
                outcome.probabilistic[verifier.name] = _probabilistic_info(
                    verifier, table.size, classified
                )
                continue
            update = verifier.compute(table)
            states.tighten(lower=update.lower, upper=update.upper)
            states.classify(query.threshold, query.tolerance)
            outcome.executed.append(verifier.name)
            outcome.unknown_after[verifier.name] = states.unknown_fraction
        return outcome

    @staticmethod
    def _apply_uncertified(
        update,
        states: CandidateStates,
        threshold: float,
        tolerance: float,
    ) -> int:
        """Classify from statistical bounds without polluting certified state.

        The update's bounds are intersected with the current interval
        for the classification attempt only: rows still unknown
        afterwards get their pre-verifier bounds back, so later
        certified tiers never inherit a confidence-only constraint.
        Rows where the statistical interval contradicts the certified
        one (sampling landed outside the algebraic bracket) keep
        their certified bounds untouched.
        """
        snap_lower = states.lower.copy()
        snap_upper = states.upper.copy()
        mask = states.unknown_mask()
        before = int(mask.sum())
        cand_lower = snap_lower.copy()
        cand_upper = snap_upper.copy()
        if update.lower is not None:
            cand_lower[mask] = np.maximum(snap_lower, update.lower)[mask]
        if update.upper is not None:
            cand_upper[mask] = np.minimum(snap_upper, update.upper)[mask]
        bad = cand_lower > cand_upper
        cand_lower[bad] = snap_lower[bad]
        cand_upper[bad] = snap_upper[bad]
        states.lower[:] = cand_lower
        states.upper[:] = cand_upper
        states.classify(threshold, tolerance)
        still = states.unknown_mask()
        states.lower[still] = snap_lower[still]
        states.upper[still] = snap_upper[still]
        return before - int(still.sum())


    def run_batch(
        self,
        tables: Sequence[SubregionTable],
        flat_states: CandidateStates,
        offsets: np.ndarray,
        threshold: float,
        tolerance: float,
    ) -> list[ChainOutcome]:
        """Execute the chain across a whole batch of queries at once.

        ``flat_states`` holds the concatenated candidate states of
        every query (query ``b``'s candidates occupy rows
        ``offsets[b]:offsets[b+1]``).  Each verifier is evaluated for
        the queries that still have unknown candidates — mirroring the
        sequential early-termination rule query by query — but the
        resulting bounds are applied with a *single* ``tighten`` and a
        *single* ``classify`` over the flat candidate×query arrays, so
        the per-stage numpy overhead is paid once per batch instead of
        once per query.  Per-candidate arithmetic is identical to
        :meth:`run`, hence so are the resulting labels and bounds.
        """
        n_queries = len(tables)
        if offsets.shape != (n_queries + 1,):
            raise ValueError("offsets must have one entry per query plus a sentinel")
        outcomes = [ChainOutcome() for _ in range(n_queries)]
        sizes = np.diff(offsets)
        flat_states.classify(threshold, tolerance)
        unknown = self._unknown_per_query(flat_states, offsets)
        for verifier in self._verifiers:
            active = np.flatnonzero(unknown)
            if active.size == 0:
                break
            updates = verifier.compute_batch([tables[b] for b in active])
            if not verifier.certified:
                unknown_before = unknown.copy()
                lower = np.zeros(flat_states.size)
                upper = np.ones(flat_states.size)
                for b, update in zip(active, updates):
                    lo, hi = offsets[b], offsets[b + 1]
                    if update.lower is not None:
                        lower[lo:hi] = update.lower
                    if update.upper is not None:
                        upper[lo:hi] = update.upper
                self._apply_uncertified(
                    BoundUpdate(lower=lower, upper=upper),
                    flat_states,
                    threshold,
                    tolerance,
                )
                unknown = self._unknown_per_query(flat_states, offsets)
                for b in active:
                    outcomes[b].executed.append(verifier.name)
                    outcomes[b].unknown_after[verifier.name] = float(
                        unknown[b] / sizes[b]
                    )
                    outcomes[b].probabilistic[verifier.name] = _probabilistic_info(
                        verifier,
                        tables[b].size,
                        int(unknown_before[b] - unknown[b]),
                    )
                continue
            lower = upper = None
            if any(u.lower is not None for u in updates):
                lower = np.zeros(flat_states.size)
            if any(u.upper is not None for u in updates):
                upper = np.ones(flat_states.size)
            for b, update in zip(active, updates):
                lo, hi = offsets[b], offsets[b + 1]
                if update.lower is not None:
                    lower[lo:hi] = update.lower
                if update.upper is not None:
                    upper[lo:hi] = update.upper
            flat_states.tighten(lower=lower, upper=upper)
            flat_states.classify(threshold, tolerance)
            unknown = self._unknown_per_query(flat_states, offsets)
            for b in active:
                outcomes[b].executed.append(verifier.name)
                outcomes[b].unknown_after[verifier.name] = float(
                    unknown[b] / sizes[b]
                )
        return outcomes

    @staticmethod
    def _unknown_per_query(
        flat_states: CandidateStates, offsets: np.ndarray
    ) -> np.ndarray:
        """Count still-unknown candidates per query segment."""
        is_unknown = (flat_states.labels == 0).astype(np.int64)
        return np.add.reduceat(is_unknown, offsets[:-1])


def _probabilistic_info(verifier: Verifier, n_candidates: int, classified: int):
    """Statistical terms an uncertified verifier's labels hold under."""
    info: dict = {"classified": int(classified)}
    for attr in ("trials", "confidence"):
        value = getattr(verifier, attr, None)
        if value is not None:
            info[attr] = value
    epsilon = getattr(verifier, "epsilon", None)
    if callable(epsilon):
        info["epsilon"] = float(epsilon(n_candidates))
    return info


def default_chain() -> VerifierChain:
    """The paper's chain: RS → L-SR → U-SR (Figure 5)."""
    return VerifierChain(
        [
            RightmostSubregionVerifier(),
            LowerSubregionVerifier(),
            UpperSubregionVerifier(),
        ]
    )
