"""The verification framework of Figure 5: verifiers + classifier loop.

Verifiers run in ascending cost order.  After each one, freshly
computed bounds are intersected into the state (only for still-unknown
objects) and the classifier re-labels.  The chain stops as soon as
every candidate is labelled *satisfy* or *fail* — "it is not always
necessary for all verifiers to be executed" (Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery
from repro.core.verifiers.base import Verifier
from repro.core.verifiers.lsr import LowerSubregionVerifier
from repro.core.verifiers.rs import RightmostSubregionVerifier
from repro.core.verifiers.usr import UpperSubregionVerifier

__all__ = ["ChainOutcome", "VerifierChain", "default_chain"]


@dataclass
class ChainOutcome:
    """Diagnostics of one chain execution.

    ``unknown_after`` maps each verifier's name to the fraction of
    candidates still unknown after it ran — the exact series Figure 12
    plots.  Verifiers skipped due to early termination are absent.
    """

    unknown_after: dict[str, float] = field(default_factory=dict)
    executed: list[str] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        """True when verification alone settled every candidate."""
        if not self.unknown_after:
            return False
        return min(self.unknown_after.values()) == 0.0


class VerifierChain:
    """An ordered sequence of verifiers applied with re-classification."""

    def __init__(self, verifiers: Sequence[Verifier]) -> None:
        if not verifiers:
            raise ValueError("a chain needs at least one verifier")
        self._verifiers = tuple(sorted(verifiers, key=lambda v: v.cost_rank))

    @property
    def verifiers(self) -> tuple[Verifier, ...]:
        return self._verifiers

    def run(
        self,
        table: SubregionTable,
        states: CandidateStates,
        query: CPNNQuery,
    ) -> ChainOutcome:
        """Execute the chain until done or all verifiers have run."""
        outcome = ChainOutcome()
        states.classify(query.threshold, query.tolerance)
        for verifier in self._verifiers:
            if states.n_unknown == 0:
                break
            update = verifier.compute(table)
            states.tighten(lower=update.lower, upper=update.upper)
            states.classify(query.threshold, query.tolerance)
            outcome.executed.append(verifier.name)
            outcome.unknown_after[verifier.name] = states.unknown_fraction
        return outcome


def default_chain() -> VerifierChain:
    """The paper's chain: RS → L-SR → U-SR (Figure 5)."""
    return VerifierChain(
        [
            RightmostSubregionVerifier(),
            LowerSubregionVerifier(),
            UpperSubregionVerifier(),
        ]
    )
