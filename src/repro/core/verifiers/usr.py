"""The Upper-Subregion (U-SR) verifier — Equation 5 / Appendix I.

Split on whether any other object falls below the subregion's *upper*
end-point ``e_{j+1}`` (event F̄).  If none does, ``X_i`` is certainly
the NN; otherwise at least two objects share ``S_j`` and
exchangeability caps the conditional probability at ½:

    q_ij.u = ½ · ( Π_{k≠i, U_k∩S_{j+1}≠∅} (1 − D_k(e_{j+1}))
                 + Π_{k≠i, U_k∩S_j≠∅}     (1 − D_k(e_j)) )

which is Equation 11's form ``½ (Z_i(e_{j+1}) + Z_i(e_j))`` — the
products were already computed (and cached) for L-SR, exactly the
reuse the paper describes in Appendix I.  Aggregation is Equation 4
with ``q_ij.u`` in place of ``q_ij.l``:

    p_i.u = Σ_{j<M} s_ij · q_ij.u

Cost: O(|C|·M).  U-SR lowers *upper* bounds, so it shines at large
thresholds where most objects must be proven to *fail* (Figure 12).
"""

from __future__ import annotations

import numpy as np

from repro.core.subregions import SubregionTable
from repro.core.verifiers.base import BoundUpdate, Verifier

__all__ = ["UpperSubregionVerifier"]


class UpperSubregionVerifier(Verifier):
    """Upper-bound verifier from the two-sided subregion split."""

    name = "U-SR"
    cost_rank = 2

    def compute(self, table: SubregionTable) -> BoundUpdate:
        upper = np.einsum("ij,ij->i", table.s_inner, table.q_upper)
        return BoundUpdate(upper=np.clip(upper, 0.0, 1.0))
