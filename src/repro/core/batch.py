"""Batch evaluation substrate: one amortised pass over many specs.

The workloads that motivate probabilistic NN queries — moving clients
re-probing as they travel, periodic sensor sweeps, privacy-preserving
location services — issue *many* query points against *one* slowly
changing object set.
:meth:`repro.core.engine.UncertainEngine.execute_batch` serves that
shape directly instead of looping over
:meth:`~repro.core.engine.UncertainEngine.execute`.  For C-PNN specs:

* **filtering** runs as a single vectorised MBR sweep for the whole
  batch (:class:`repro.index.filtering.BatchMbrFilter`) instead of one
  best-first R-tree traversal per point;
* **initialisation** shares distance distributions through an LRU
  cache keyed by ``(object, query point)``, so repeated probes (the
  common case for moving clients) skip the histogram fold entirely;
* **verification** applies each verifier across the whole
  candidate×query matrix with one flat ``tighten``/``classify`` sweep
  (:meth:`repro.core.verifiers.chain.VerifierChain.run_batch`);
* **refinement** runs one vectorised
  :meth:`~repro.core.refinement.Refiner.refine_objects` sweep per
  query over *all* of its surviving candidates at once (each query has
  its own subregion grid, so the sweeps stay per-query), operating on
  slice-backed views of the flat state.

k-NN and range specs share the same MBR sweep and distribution cache
(see :meth:`~repro.core.engine.UncertainEngine.execute_batch`).

Per-candidate arithmetic is identical to the sequential path, so batch
and sequential answers agree exactly; the speed-up comes purely from
amortising per-query orchestration overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

import numpy as np

from repro.core.types import PhaseTimings, QueryResult
from repro.uncertainty.distance import DistanceDistribution

__all__ = [
    "BatchResult",
    "DistributionCache",
    "LruCache",
    "TableCache",
    "point_key",
]


def point_key(q) -> Hashable:
    """A hashable identity for a query point (scalar or coordinates)."""
    if hasattr(q, "__len__"):
        return tuple(float(c) for c in q)
    return float(q)


class LruCache:
    """Minimal LRU with hit/miss counters, shared by the batch caches.

    ``get`` counts a hit (and refreshes recency) or a miss; ``put``
    inserts and evicts the least-recently-used entry past ``maxsize``.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self._maxsize = int(maxsize)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def clear(self) -> None:
        self._entries.clear()

    def get(self, key: Hashable):
        """The cached value, refreshed as most recent, or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, key: Hashable):
        """The cached value without counting a hit/miss or refreshing
        recency — for planning probes that must not perturb the
        counters a later :meth:`get` will produce."""
        return self._entries.get(key)

    def put(self, key: Hashable, value) -> tuple[Hashable, object] | None:
        """Insert an entry; returns the ``(key, value)`` it evicted, if any.

        Reporting the LRU victim lets callers that keep secondary
        indexes over the entries (``DistributionCache``) stay in sync
        without scanning.
        """
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self._maxsize:
            return self._entries.popitem(last=False)
        return None

    def delete(self, key: Hashable) -> bool:
        """Drop one entry by key; True if it was present."""
        return self._entries.pop(key, _ABSENT) is not _ABSENT

    def items(self):
        """Snapshot of ``(key, value)`` pairs, LRU-oldest first."""
        return list(self._entries.items())


#: Sentinel distinguishing "absent" from a stored ``None``.
_ABSENT = object()


class DistributionCache:
    """LRU cache of distance distributions keyed by (object, point).

    A distance distribution is a pure function of the uncertain object
    and the query point, so cached entries never go stale.  Keys use
    ``id(object)`` for speed; each entry keeps a strong reference to
    its object, so an ``id`` can never be recycled while its entry is
    live.  The flip side is that entries pin their objects in memory —
    hence :meth:`evict_object`, which the engine calls when an object
    is removed.

    The cache pays off whenever a batch (or a sequence of batches)
    probes the same point more than once — moving-client traces revisit
    locations constantly — and costs one dict probe per miss otherwise.

    A per-object reverse index (``id(obj)`` → live cache keys) keeps
    :meth:`evict_object` proportional to *that object's* entries rather
    than the whole cache — under dead-reckoning churn the engine calls
    it once per removal, so a full scan would make every update O(cache
    size).
    """

    def __init__(self, maxsize: int = 65536) -> None:
        self._cache = LruCache(maxsize)
        self._by_object: dict[int, set[Hashable]] = {}

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def maxsize(self) -> int:
        return self._cache.maxsize

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    def clear(self) -> None:
        self._cache.clear()
        self._by_object.clear()

    def evict_object(self, obj) -> int:
        """Drop every entry belonging to ``obj`` (e.g. on removal)."""
        doomed = self._by_object.pop(id(obj), None)
        if not doomed:
            return 0
        for cache_key in doomed:
            self._cache.delete(cache_key)
        return len(doomed)

    def distribution(self, obj, key: Hashable) -> DistanceDistribution:
        """The distribution of ``|obj - q|`` for the point behind ``key``.

        ``key`` must be ``point_key(q)`` for the point ``q`` the caller
        passes to ``obj.distance_distribution`` on a miss — it doubles
        as the query coordinates here to avoid recomputing it per
        candidate.
        """
        cache_key = (id(obj), key)
        entry = self._cache.get(cache_key)
        if entry is not None:
            return entry[1]
        distribution = obj.distance_distribution(key)
        evicted = self._cache.put(cache_key, (obj, distribution))
        self._by_object.setdefault(id(obj), set()).add(cache_key)
        if evicted is not None:
            victim_key = evicted[0]
            bucket = self._by_object.get(victim_key[0])
            if bucket is not None:
                bucket.discard(victim_key)
                if not bucket:
                    del self._by_object[victim_key[0]]
        return distribution


@dataclass(frozen=True)
class CachedTable:
    """One table-cache entry: the built table plus the geometry needed
    to decide, under a later object-set mutation, whether the entry is
    still exact (DESIGN.md §11).

    Attributes
    ----------
    table:
        The fully built :class:`~repro.core.subregions.SubregionTable`.
    fmin:
        The filtering radius of the point's candidate set *at build
        time*.  Mutations that keep the entry alive provably leave
        ``f_min`` unchanged, so the stored value stays current for as
        long as the entry lives.
    results:
        Memoised :class:`~repro.core.types.QueryResult` snapshots keyed
        by ``(strategy, spec type, threshold, tolerance)``.  The full
        pipeline is deterministic in (table, spec, engine config), so a
        result stays exact precisely as long as its table does; a
        repeated probe of an undisturbed point replays the snapshot and
        skips verification *and* refinement, not just initialisation.
    """

    table: object
    fmin: float
    results: dict = field(default_factory=dict)


class TableCache:
    """LRU of fully built subregion tables, selectively invalidated.

    Keyed by query point (``point_key``); values are
    :class:`CachedTable` entries.  Unlike a plain LRU, the cache knows
    which entries an object-set mutation can affect: an insert or
    removal of object ``o`` changes the candidate set of point ``q``
    iff ``mindist(o, q) <= f_min(q)`` (see DESIGN.md §11 for the
    argument covering both directions), so
    :meth:`invalidate_overlapping` drops exactly those entries with one
    vectorised MBR-distance sweep and leaves the rest warm.

    The sweep's point/``f_min`` matrices are rebuilt lazily and only
    when the entry set changed since the last sweep — in the steady
    state of an update stream most mutations invalidate nothing, so
    consecutive sweeps reuse the same arrays.
    """

    def __init__(self, maxsize: int) -> None:
        self._cache = LruCache(maxsize)
        self._points: np.ndarray | None = None
        self._fmins: np.ndarray | None = None
        self._keys: list[Hashable] = []
        self._dirty = True

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def maxsize(self) -> int:
        return self._cache.maxsize

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    def clear(self) -> None:
        self._cache.clear()
        self._dirty = True

    def get(self, key: Hashable) -> CachedTable | None:
        """The cached entry for a point key (LRU-refreshed), or None."""
        entry = self._cache.get(key)
        return entry  # type: ignore[return-value]

    def peek(self, key: Hashable) -> CachedTable | None:
        """The cached entry without touching counters or recency (the
        sharded engine's pre-sweep probe; see DESIGN.md §12)."""
        return self._cache.peek(key)  # type: ignore[return-value]

    def put(self, key: Hashable, entry: CachedTable) -> None:
        self._cache.put(key, entry)
        self._dirty = True

    def _geometry(self) -> tuple[np.ndarray, np.ndarray, list[Hashable]]:
        if self._dirty:
            items = self._cache.items()
            self._keys = [key for key, _ in items]
            self._points = np.array(
                [
                    key if isinstance(key, tuple) else (key,)
                    for key in self._keys
                ],
                dtype=float,
            ).reshape(len(self._keys), -1)
            self._fmins = np.array(
                [entry.fmin for _, entry in items], dtype=float
            )
            self._dirty = False
        return self._points, self._fmins, self._keys

    def invalidate_overlapping(self, lows, highs) -> int:
        """Drop entries whose candidate set the MBR ``[lows, highs]``
        could change; returns how many were dropped.

        The test per cached point ``q`` is ``mindist(mbr, q) <=
        f_min(q)``, with the mindist arithmetic mirroring
        :meth:`repro.index.filtering.BatchMbrFilter.matrices` operation
        for operation so the decision is exactly the filter's own
        candidate test.
        """
        return self.invalidate_boxes(
            np.asarray(lows, dtype=float)[None, :],
            np.asarray(highs, dtype=float)[None, :],
        )

    def invalidate_boxes(self, lows: np.ndarray, highs: np.ndarray) -> int:
        """Vectorised form of :meth:`invalidate_overlapping` for a whole
        batch of mutation MBRs (``(m, d)`` arrays): an entry is dropped
        when *any* box passes its candidate test.  One numpy sweep over
        the ``m × entries`` grid — how the engine folds a tick's worth
        of queued dynamic updates into the cache at the next query.
        """
        if not len(self._cache) or not len(lows):
            return 0
        points, fmins, keys = self._geometry()
        gap = np.maximum(
            lows[:, None, :] - points[None, :, :],
            points[None, :, :] - highs[:, None, :],
        )
        np.maximum(gap, 0.0, out=gap)
        np.multiply(gap, gap, out=gap)
        mindist = gap.sum(axis=2)
        np.sqrt(mindist, out=mindist)
        doomed = np.flatnonzero((mindist <= fmins[None, :]).any(axis=0))
        if not doomed.size:
            return 0
        for i in doomed:
            self._cache.delete(keys[int(i)])
        self._dirty = True
        return int(doomed.size)


@dataclass
class BatchResult:
    """Outcome of one :meth:`UncertainEngine.execute_batch` (or legacy
    ``query_batch``) call.

    Attributes
    ----------
    results:
        One :class:`~repro.core.types.QueryResult` per spec, in input
        order.  For C-PNN specs, per-result timings for the *shared*
        phases (filtering, initialisation, and VR's flat verification
        sweep) are zero — they cannot be attributed to single queries;
        see :attr:`timings` for the batch totals.  (The basic/refine
        strategies run refinement per query, so those results carry
        their own ``timings.refinement``; k-NN/range results carry
        their full per-spec phase timings except the shared filtering
        sweep.)
    timings:
        Wall-clock totals of the four batch phases (filtering once for
        the whole batch, shared initialisation, the flat verification
        sweep, per-query refinement).
    cache_hits / cache_misses:
        Distribution-cache traffic attributable to this batch.
    table_hits / table_misses:
        Subregion-table-cache traffic: a table hit means a repeated
        probe skipped distribution construction and table building
        entirely for that point.
    result_hits:
        Probes answered by replaying a memoised result snapshot (a
        strict subset of ``table_hits``): the whole pipeline —
        filtering, initialisation, verification, refinement — was
        skipped for those specs (DESIGN.md §11).
    replayed:
        The input positions behind ``result_hits`` — which specs of
        this batch were answered by snapshot replay (ascending input
        order).  Lets monitoring callers report *which* queries were
        re-executed vs. replayed instead of inferring it from timings
        (``StreamingWorkload.drive``'s tick reports ride this).
    """

    results: list[QueryResult] = field(default_factory=list)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    cache_hits: int = 0
    cache_misses: int = 0
    table_hits: int = 0
    table_misses: int = 0
    result_hits: int = 0
    replayed: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]

    @property
    def answers(self) -> list[tuple]:
        """Answer tuple of every query, in input order."""
        return [result.answers for result in self.results]

    @property
    def answer_sets(self) -> list[frozenset]:
        """Answer sets (order-insensitive) of every query."""
        return [frozenset(result.answers) for result in self.results]

    @property
    def total_refined(self) -> int:
        """Candidates that needed refinement across the whole batch."""
        return sum(result.refined_objects for result in self.results)

    def __repr__(self) -> str:
        """Compact summary — a batch holds one full record list per
        spec, so the dataclass default would dump them all."""
        return (
            f"{type(self).__name__}(results={len(self.results)}, "
            f"total_s={self.timings.total:.6g}, "
            f"cache_hits={self.cache_hits}, cache_misses={self.cache_misses}, "
            f"table_hits={self.table_hits}, result_hits={self.result_hits})"
        )


def distributions_for(
    candidates: Sequence,
    q,
    cache: DistributionCache | None,
) -> list[DistanceDistribution]:
    """Distance distributions of ``candidates`` w.r.t. ``q``.

    Routes through ``cache`` when one is given; otherwise constructs
    directly (the sequential path's behaviour).
    """
    if cache is None:
        return [obj.distance_distribution(q) for obj in candidates]
    key = point_key(q)
    return [cache.distribution(obj, key) for obj in candidates]
