"""Batch evaluation substrate: one amortised pass over many specs.

The workloads that motivate probabilistic NN queries — moving clients
re-probing as they travel, periodic sensor sweeps, privacy-preserving
location services — issue *many* query points against *one* slowly
changing object set.
:meth:`repro.core.engine.UncertainEngine.execute_batch` serves that
shape directly instead of looping over
:meth:`~repro.core.engine.UncertainEngine.execute`.  For C-PNN specs:

* **filtering** runs as a single vectorised MBR sweep for the whole
  batch (:class:`repro.index.filtering.BatchMbrFilter`) instead of one
  best-first R-tree traversal per point;
* **initialisation** shares distance distributions through an LRU
  cache keyed by ``(object, query point)``, so repeated probes (the
  common case for moving clients) skip the histogram fold entirely;
* **verification** applies each verifier across the whole
  candidate×query matrix with one flat ``tighten``/``classify`` sweep
  (:meth:`repro.core.verifiers.chain.VerifierChain.run_batch`);
* **refinement** runs one vectorised
  :meth:`~repro.core.refinement.Refiner.refine_objects` sweep per
  query over *all* of its surviving candidates at once (each query has
  its own subregion grid, so the sweeps stay per-query), operating on
  slice-backed views of the flat state.

k-NN and range specs share the same MBR sweep and distribution cache
(see :meth:`~repro.core.engine.UncertainEngine.execute_batch`).

Per-candidate arithmetic is identical to the sequential path, so batch
and sequential answers agree exactly; the speed-up comes purely from
amortising per-query orchestration overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

from repro.core.types import PhaseTimings, QueryResult
from repro.uncertainty.distance import DistanceDistribution

__all__ = ["BatchResult", "DistributionCache", "LruCache", "point_key"]


def point_key(q) -> Hashable:
    """A hashable identity for a query point (scalar or coordinates)."""
    if hasattr(q, "__len__"):
        return tuple(float(c) for c in q)
    return float(q)


class LruCache:
    """Minimal LRU with hit/miss counters, shared by the batch caches.

    ``get`` counts a hit (and refreshes recency) or a miss; ``put``
    inserts and evicts the least-recently-used entry past ``maxsize``.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self._maxsize = int(maxsize)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def clear(self) -> None:
        self._entries.clear()

    def get(self, key: Hashable):
        """The cached value, refreshed as most recent, or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)

    def evict_matching(self, predicate) -> int:
        """Drop every entry whose value satisfies ``predicate``."""
        doomed = [k for k, v in self._entries.items() if predicate(v)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)


class DistributionCache:
    """LRU cache of distance distributions keyed by (object, point).

    A distance distribution is a pure function of the uncertain object
    and the query point, so cached entries never go stale.  Keys use
    ``id(object)`` for speed; each entry keeps a strong reference to
    its object, so an ``id`` can never be recycled while its entry is
    live.  The flip side is that entries pin their objects in memory —
    hence :meth:`evict_object`, which the engine calls when an object
    is removed.

    The cache pays off whenever a batch (or a sequence of batches)
    probes the same point more than once — moving-client traces revisit
    locations constantly — and costs one dict probe per miss otherwise.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        self._cache = LruCache(maxsize)

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def maxsize(self) -> int:
        return self._cache.maxsize

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    def clear(self) -> None:
        self._cache.clear()

    def evict_object(self, obj) -> int:
        """Drop every entry belonging to ``obj`` (e.g. on removal)."""
        return self._cache.evict_matching(lambda entry: entry[0] is obj)

    def distribution(self, obj, key: Hashable) -> DistanceDistribution:
        """The distribution of ``|obj - q|`` for the point behind ``key``.

        ``key`` must be ``point_key(q)`` for the point ``q`` the caller
        passes to ``obj.distance_distribution`` on a miss — it doubles
        as the query coordinates here to avoid recomputing it per
        candidate.
        """
        cache_key = (id(obj), key)
        entry = self._cache.get(cache_key)
        if entry is not None:
            return entry[1]
        distribution = obj.distance_distribution(key)
        self._cache.put(cache_key, (obj, distribution))
        return distribution


@dataclass
class BatchResult:
    """Outcome of one :meth:`UncertainEngine.execute_batch` (or legacy
    ``query_batch``) call.

    Attributes
    ----------
    results:
        One :class:`~repro.core.types.QueryResult` per spec, in input
        order.  For C-PNN specs, per-result timings for the *shared*
        phases (filtering, initialisation, and VR's flat verification
        sweep) are zero — they cannot be attributed to single queries;
        see :attr:`timings` for the batch totals.  (The basic/refine
        strategies run refinement per query, so those results carry
        their own ``timings.refinement``; k-NN/range results carry
        their full per-spec phase timings except the shared filtering
        sweep.)
    timings:
        Wall-clock totals of the four batch phases (filtering once for
        the whole batch, shared initialisation, the flat verification
        sweep, per-query refinement).
    cache_hits / cache_misses:
        Distribution-cache traffic attributable to this batch.
    table_hits / table_misses:
        Subregion-table-cache traffic: a table hit means a repeated
        probe skipped distribution construction and table building
        entirely for that point.
    """

    results: list[QueryResult] = field(default_factory=list)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    cache_hits: int = 0
    cache_misses: int = 0
    table_hits: int = 0
    table_misses: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]

    @property
    def answers(self) -> list[tuple]:
        """Answer tuple of every query, in input order."""
        return [result.answers for result in self.results]

    @property
    def answer_sets(self) -> list[frozenset]:
        """Answer sets (order-insensitive) of every query."""
        return [frozenset(result.answers) for result in self.results]

    @property
    def total_refined(self) -> int:
        """Candidates that needed refinement across the whole batch."""
        return sum(result.refined_objects for result in self.results)


def distributions_for(
    candidates: Sequence,
    q,
    cache: DistributionCache | None,
) -> list[DistanceDistribution]:
    """Distance distributions of ``candidates`` w.r.t. ``q``.

    Routes through ``cache`` when one is given; otherwise constructs
    directly (the sequential path's behaviour).
    """
    if cache is None:
        return [obj.distance_distribution(q) for obj in candidates]
    key = point_key(q)
    return [cache.distribution(obj, key) for obj in candidates]
