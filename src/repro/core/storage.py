"""Disk-page emulation of the paper's subregion storage.

Section IV-D (implementation issues): "We store the subregion
probabilities (s_ij) and the distance cdf values (D_i(e_j)) for all
objects in the same subregion as a list.  These lists are indexed by a
hash table, so that the information of each subregion can be accessed
easily.  The space complexity of this structure is O(|C| M).  It can
be extended to a disk-based structure by partitioning the lists into
disk pages."

This module implements that structure faithfully enough to *measure*
it: fixed-size pages hold packed ``(object, s_ij, D_i(e_j))`` entries,
a directory maps each subregion to its page chain, and an LRU buffer
pool (now the shared :class:`repro.storage.pool.BufferPool`, which
also serves the mmap column backend) counts logical reads, page
faults and evictions.  Missing pages raise the typed
:class:`repro.storage.errors.MissingPageError` — still a ``KeyError``
— naming the page, the requesting subregion chain, and the backend.  The
storage-backed verifier functions compute exactly the same bounds as
the in-memory verifiers (asserted by tests) while exposing the I/O
cost profile a disk-resident implementation would pay:

* building the store writes ``O(|C| · M / B)`` pages;
* one verifier pass over all subregions faults each page once when the
  pool holds at least one page per chain — the sequential-scan bound;
* repeated passes with a pool smaller than the working set thrash,
  which the eviction counter makes visible.
"""

from __future__ import annotations

import struct
from typing import Iterator

import numpy as np

from repro.core.subregions import SubregionTable
from repro.storage.errors import MissingPageError, StorageError
from repro.storage.pool import BufferPool, PageStats

__all__ = [
    "BufferPool",
    "MissingPageError",
    "PageStats",
    "StorageError",
    "SubregionStore",
    "rs_upper_bounds_from_store",
    "subregion_bounds_from_store",
]

#: Bytes per packed entry: object row (int64), s_ij, D_i(e_j) (float64 each).
_ENTRY = struct.Struct("<qdd")

#: Default page size in bytes (a classic small DB page).
DEFAULT_PAGE_SIZE = 4096


class SubregionStore:
    """The paper's subregion lists, partitioned into disk pages.

    Parameters
    ----------
    table:
        An in-memory subregion table to persist.
    page_size:
        Page payload size in bytes.
    pool_pages:
        Buffer-pool capacity in pages.

    Only entries with ``s_ij > 0`` are stored, mirroring the paper's
    per-subregion lists (objects absent from a subregion contribute
    nothing to its verifier terms except through the edge products,
    which are reconstructed incrementally during the scan).
    """

    def __init__(
        self,
        table: SubregionTable,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_pages: int = 64,
    ) -> None:
        if page_size < _ENTRY.size:
            raise ValueError("page size below a single entry")
        self._table = table
        self._page_size = int(page_size)
        self._entries_per_page = self._page_size // _ENTRY.size
        self.pool = BufferPool(pool_pages)
        #: subregion j -> list of page ids holding its entries, in order.
        self._directory: dict[int, list[int]] = {}
        #: edge index j -> packed survival column (kept page-resident
        #: like the hash directory itself; O(M) not O(|C| M)).
        self._build()

    # ------------------------------------------------------------------

    @property
    def table(self) -> SubregionTable:
        return self._table

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def entries_per_page(self) -> int:
        return self._entries_per_page

    @property
    def n_pages(self) -> int:
        return self.pool.pages_on_disk

    @property
    def directory_sizes(self) -> dict[int, int]:
        return {j: len(pages) for j, pages in self._directory.items()}

    def _build(self) -> None:
        table = self._table
        next_page = 0
        for j in range(table.n_inner):
            rows = np.flatnonzero(table.s_inner[:, j] > 0.0)
            payload = bytearray()
            pages: list[int] = []
            count_in_page = 0
            for i in rows:
                payload += _ENTRY.pack(
                    int(i),
                    float(table.s_inner[i, j]),
                    float(table.cdf_at_edges[i, j]),
                )
                count_in_page += 1
                if count_in_page == self._entries_per_page:
                    self.pool.write_page(next_page, bytes(payload))
                    pages.append(next_page)
                    next_page += 1
                    payload = bytearray()
                    count_in_page = 0
            if payload:
                self.pool.write_page(next_page, bytes(payload))
                pages.append(next_page)
                next_page += 1
            self._directory[j] = pages

    # ------------------------------------------------------------------

    def scan_subregion(self, j: int) -> Iterator[tuple[int, float, float]]:
        """Yield ``(object row, s_ij, D_i(e_j))`` for subregion ``j``,
        paying buffer-pool I/O for every page touched."""
        if j not in self._directory:
            raise KeyError(f"no such subregion: {j}")
        pages = self._directory[j]
        for pos, page_id in enumerate(pages):
            payload = self.pool.read_page(
                page_id, chain=f"subregion {j}, page {pos + 1}/{len(pages)}"
            )
            for offset in range(0, len(payload), _ENTRY.size):
                yield _ENTRY.unpack_from(payload, offset)

    def total_entries(self) -> int:
        return int((self._table.s_inner > 0.0).sum())


# ----------------------------------------------------------------------
# Storage-backed verifier computations
# ----------------------------------------------------------------------


def rs_upper_bounds_from_store(store: SubregionStore) -> np.ndarray:
    """RS verifier off the paged lists: ``p_i.u = Σ_j s_ij`` (the total
    inner mass equals ``1 − s_iM``)."""
    table = store.table
    upper = np.zeros(table.size)
    for j in range(table.n_inner):
        for row, s_ij, _ in store.scan_subregion(j):
            upper[row] += s_ij
    return np.clip(upper, 0.0, 1.0)


def subregion_bounds_from_store(
    store: SubregionStore,
) -> tuple[np.ndarray, np.ndarray]:
    """L-SR lower and U-SR upper bounds computed in one paged scan.

    The per-edge exclusion products are rebuilt from the scanned
    ``D_i(e_j)`` values: for every subregion the scan provides each
    present object's cdf at the subregion's left edge, which is all
    Lemma 2 / Equation 5 need (absent objects have ``D_k(e_j) = 0``
    for edges at or left of ``f_min``, contributing factor 1).
    """
    table = store.table
    n = table.size
    lower = np.zeros(n)
    upper = np.zeros(n)
    prev_rows: np.ndarray | None = None
    prev_s: np.ndarray | None = None
    prev_z_excl: np.ndarray | None = None
    for j in range(table.n_inner + 1):
        if j < table.n_inner:
            entries = list(store.scan_subregion(j))
        else:
            entries = []
        if entries:
            rows = np.asarray([e[0] for e in entries], dtype=int)
            s_vals = np.asarray([e[1] for e in entries])
            cdf_vals = np.asarray([e[2] for e in entries])
        else:
            rows = np.zeros(0, dtype=int)
            s_vals = np.zeros(0)
            cdf_vals = np.zeros(0)
        # Exclusion products at this subregion's left edge.  Objects
        # not in the list still matter when their support has already
        # ended... which cannot happen left of f_min (DESIGN.md §5),
        # so the product over scanned survivals is exact — but objects
        # *straddling* the edge with zero mass here do appear in
        # earlier/later lists only; we read their cdf from the table's
        # edge matrix, which a disk implementation would co-locate
        # with the directory (O(M) resident data).
        full_survival = 1.0 - table.cdf_at_edges[:, j]
        zero = full_survival <= 0.0
        logs = np.log(np.where(zero, 1.0, full_survival))
        total_zero = int(zero.sum())
        total_log = float(logs.sum())
        z_excl = np.where(
            (total_zero - zero.astype(int)) > 0,
            0.0,
            np.exp(total_log - logs),
        )
        if rows.size:
            c_j = rows.size
            lower[rows] += s_vals * z_excl[rows] / c_j
        if prev_rows is not None and prev_rows.size:
            # U-SR needs this edge's products as the e_{j+1} term for
            # the previous subregion.
            upper[prev_rows] += prev_s * 0.5 * (
                prev_z_excl[prev_rows] + z_excl[prev_rows]
            )
        prev_rows, prev_s, prev_z_excl = rows, s_vals, z_excl
    return np.clip(lower, 0.0, 1.0), np.clip(upper, 0.0, 1.0)
