"""Subregion computation (Section IV-A, Figure 7 of the paper).

Given the candidate set's distance distributions, the space of
distances is partitioned at *end-points*: every near point, every point
where any distance pdf changes value (histogram breakpoints) below
``f_min``, and finally ``f_min`` and ``f_max`` themselves.  Adjacent
end-points bound the *subregions* ``S_1 .. S_M``; the rightmost
subregion ``S_M = [f_min, f_max]`` is special because no object whose
distance falls there can be the nearest neighbour.

The table stores, per object ``i`` and subregion ``j``:

* ``s_ij`` — the subregion probability ``Pr[R_i ∈ S_j]``,
* ``D_i(e_j)`` — the distance cdf at the subregion's lower end-point,

plus the per-edge products ``Y_j = Π_k (1 − D_k(e_j))`` (Equation 2)
and the per-object exclusion products
``Z_ij = Π_{k≠i} (1 − D_k(e_j))`` used by the L-SR and U-SR verifiers
and by incremental refinement.

Because the end-point grid contains *every* pdf breakpoint below
``f_min``, each distance pdf is constant inside every subregion.  This
is what makes Lemma 3 (conditional uniformity / exchangeability inside
a subregion) valid, and what makes the refinement integrand a
polynomial on each subregion — see :mod:`repro.core.refinement`.

Implementation notes
--------------------
* The cdf matrix ``D_i(e_j)`` and the end-point grid are built from a
  :class:`~repro.uncertainty.columnar.DistributionPack` — one batched
  kernel call over the packed candidate histograms instead of one
  ``cdf`` call per candidate.  The pack's kernels are bit-identical to
  the scalar path, so every matrix below is unchanged by this.
* Products ``Z`` are evaluated in log-space with explicit zero-factor
  bookkeeping, so hundreds of factors neither underflow nor divide by
  zero (the paper's Equation 3 divides ``Y_j`` by ``1 − D_i(e_j)``,
  which is unsafe when an object's support ends exactly at ``e_j``).
* Products run over *all* candidates, not only those overlapping the
  subregion.  The paper restricts to overlapping objects, which is
  equivalent under its assumption that pdfs are non-zero throughout
  their uncertainty region; the full product stays correct even for
  pdfs with interior zero-density gaps (e.g. mixtures).
"""

from __future__ import annotations

from functools import cached_property
from typing import Hashable, Sequence

import numpy as np

from repro.uncertainty.columnar import DistributionPack
from repro.uncertainty.distance import DistanceDistribution

__all__ = ["SubregionTable"]

#: Relative tolerance for deduplicating end-points.
_EDGE_RTOL = 1e-12

#: Candidate sets at or below this size skip the columnar machinery —
#: plain loops win on latency there (results are bit-identical).
_SMALL_SET = 8


def _subdivide(edges: np.ndarray, parts: int) -> np.ndarray:
    """Split every interval of ``edges`` into ``parts`` equal pieces."""
    steps = np.linspace(0.0, 1.0, parts + 1)[:-1]
    widths = np.diff(edges)
    fine = (edges[:-1, None] + widths[:, None] * steps[None, :]).reshape(-1)
    return np.concatenate((fine, edges[-1:]))


class SubregionTable:
    """Subregion probabilities and cdf values for one candidate set.

    Parameters
    ----------
    distributions:
        Distance distributions of the candidate set (any order; they
        are sorted by near point internally, as the paper prescribes).

    Raises
    ------
    ValueError:
        If the candidate set is empty.
    """

    def __init__(
        self,
        distributions: Sequence[DistanceDistribution],
        grid_refinement: int = 1,
    ) -> None:
        """``grid_refinement > 1`` splits every inner subregion into
        that many equal parts.  The pdfs remain constant inside each
        finer subregion, so all verifier bounds stay *sound* at any
        refinement level; the U-SR upper bound converges toward the
        exact probability as the grid refines (the event "another
        object shares my subregion" vanishes), though convergence is
        not necessarily monotone step-by-step.  This is the simplest
        instance of the paper's future-work direction of "other kinds
        of verifiers"; ``benchmarks/test_ablation_grid_refinement.py``
        quantifies the tightness/cost trade-off."""
        if not distributions:
            raise ValueError("candidate set must not be empty")
        if grid_refinement < 1:
            raise ValueError("grid_refinement must be >= 1")
        if len(distributions) <= _SMALL_SET:
            # Tiny candidate sets are cheaper through plain Python
            # loops than through the columnar machinery; the pack is
            # still materialised lazily if refinement asks for it.
            # Both branches produce bit-identical tables.
            ordered = sorted(distributions, key=lambda d: (d.near, d.far))
            self._distributions = tuple(ordered)
            self._pack = None
            self._fmin = min(d.far for d in ordered)
            self._fmax = max(d.far for d in ordered)
        else:
            # Sort by (near, far) as the paper prescribes — the keys
            # come from the pack's flat columns (one lexsort) instead
            # of one Python key tuple per candidate; np.lexsort is
            # stable, so the order matches
            # sorted(key=lambda d: (d.near, d.far)) exactly.
            unsorted_pack = DistributionPack(distributions)
            perm = np.lexsort((unsorted_pack.far, unsorted_pack.near))
            if np.array_equal(perm, np.arange(perm.size)):
                self._distributions = tuple(distributions)
                self._pack = unsorted_pack
            else:
                self._distributions = tuple(
                    map(distributions.__getitem__, perm.tolist())
                )
                self._pack = unsorted_pack.take(perm)
            fars = self._pack.far
            self._fmin = float(fars.min())
            self._fmax = float(fars.max())
        self._edges = self._build_edges()
        if grid_refinement > 1:
            self._edges = _subdivide(self._edges, grid_refinement)
        self._cdf_matrix = self._build_cdf_matrix()
        # Clamp tiny interpolation drift so downstream algebra stays in [0, 1].
        np.clip(self._cdf_matrix, 0.0, 1.0, out=self._cdf_matrix)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_edges(self) -> np.ndarray:
        """End-points ``e_1 .. e_M`` (from the smallest near point to f_min).

        The rightmost subregion ``[f_min, f_max]`` is represented
        implicitly through :attr:`s_right`, which avoids degenerate
        zero-width edges when all far points coincide.
        """
        if self._pack is None:
            n_min = min(d.near for d in self._distributions)
        else:
            n_min = float(self._pack.near.min())
        if not self._fmin > n_min:
            raise ValueError(
                "f_min must exceed the smallest near point; the candidate "
                "set is degenerate (a zero-width distance support?)"
            )
        if self._pack is None:
            pool = [np.asarray([n_min, self._fmin])]
            for dist in self._distributions:
                edges = dist.breakpoints
                inside = edges[(edges > n_min) & (edges < self._fmin)]
                pool.append(inside)
                if n_min < dist.near < self._fmin:
                    pool.append(np.asarray([dist.near]))
            merged = np.sort(np.concatenate(pool))
        else:
            # Same multiset of end-points, pooled from the pack's flat
            # columns instead of one masking pass per candidate.
            nears = self._pack.near
            breakpoints = self._pack.edges_flat
            inside = breakpoints[
                (breakpoints > n_min) & (breakpoints < self._fmin)
            ]
            nears_inside = nears[(nears > n_min) & (nears < self._fmin)]
            merged = np.sort(
                np.concatenate(
                    (np.asarray([n_min, self._fmin]), inside, nears_inside)
                )
            )
        scale = max(abs(float(merged[0])), abs(float(merged[-1])), 1.0)
        threshold = _EDGE_RTOL * scale
        keep = np.empty(merged.size, dtype=bool)
        keep[0] = True
        np.greater(np.diff(merged), threshold, out=keep[1:])
        edges = merged[keep]
        # Guarantee the last edge is exactly f_min.
        edges[-1] = self._fmin
        return edges

    def _build_cdf_matrix(self) -> np.ndarray:
        """``D_i(e_j)`` for all candidates and end-points, (|C|, M).

        One columnar pack call replaces the per-candidate ``d.cdf``
        loop; the result is bit-identical (see
        :mod:`repro.uncertainty.columnar`).  Overridable so benchmarks
        can pit the scalar loop against the columnar kernel.
        """
        if self._pack is None:
            return np.vstack(
                [np.asarray(d.cdf(self._edges)) for d in self._distributions]
            )
        return self._pack.cdf_many(self._edges)

    # ------------------------------------------------------------------
    # Shape and identity
    # ------------------------------------------------------------------

    @property
    def distributions(self) -> tuple[DistanceDistribution, ...]:
        """Candidates sorted by near point (the paper's X_1 .. X_|C|)."""
        return self._distributions

    @property
    def pack(self) -> DistributionPack:
        """Columnar view of the candidates' histograms (row-aligned).

        Materialised lazily for small candidate sets, whose table is
        built through plain loops.
        """
        if self._pack is None:
            self._pack = DistributionPack(self._distributions)
        return self._pack

    @property
    def keys(self) -> tuple[Hashable, ...]:
        return tuple(d.key for d in self._distributions)

    @property
    def size(self) -> int:
        """|C| — number of candidates."""
        return len(self._distributions)

    @property
    def fmin(self) -> float:
        return self._fmin

    @property
    def fmax(self) -> float:
        return self._fmax

    @property
    def edges(self) -> np.ndarray:
        """Inner end-points ``e_1 .. e_M`` (last one equals ``f_min``)."""
        view = self._edges.view()
        view.flags.writeable = False
        return view

    @property
    def n_inner(self) -> int:
        """Number of inner subregions (the paper's ``M − 1``)."""
        return self._edges.size - 1

    @property
    def n_subregions(self) -> int:
        """The paper's ``M``: inner subregions plus the rightmost one."""
        return self.n_inner + 1

    @property
    def widths(self) -> np.ndarray:
        """Widths of the inner subregions."""
        return np.diff(self._edges)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SubregionTable(|C|={self.size}, M={self.n_subregions}, "
            f"fmin={self._fmin:.6g}, fmax={self._fmax:.6g})"
        )

    # ------------------------------------------------------------------
    # Matrices (all exact w.r.t. the histogram model)
    # ------------------------------------------------------------------

    @property
    def cdf_at_edges(self) -> np.ndarray:
        """``D_i(e_j)`` as a (|C|, M) matrix (read-only)."""
        view = self._cdf_matrix.view()
        view.flags.writeable = False
        return view

    @cached_property
    def s_inner(self) -> np.ndarray:
        """Subregion probabilities ``s_ij`` for inner subregions, (|C|, M−1)."""
        s = np.diff(self._cdf_matrix, axis=1)
        np.clip(s, 0.0, 1.0, out=s)
        s.flags.writeable = False
        return s

    @cached_property
    def s_right(self) -> np.ndarray:
        """``s_iM`` — probability mass in the rightmost subregion, (|C|,)."""
        s = 1.0 - self._cdf_matrix[:, -1]
        np.clip(s, 0.0, 1.0, out=s)
        s.flags.writeable = False
        return s

    @cached_property
    def counts(self) -> np.ndarray:
        """``c_j`` — objects with non-zero subregion probability, (M−1,)."""
        counts = (self.s_inner > 0.0).sum(axis=0)
        counts.flags.writeable = False
        return counts

    @cached_property
    def Y(self) -> np.ndarray:
        """``Y_j = Π_k (1 − D_k(e_j))`` for every edge (Equation 2), (M,)."""
        survival = 1.0 - self._cdf_matrix
        y = np.prod(survival, axis=0)
        y.flags.writeable = False
        return y

    @cached_property
    def Z(self) -> np.ndarray:
        """``Z_ij = Π_{k≠i} (1 − D_k(e_j))``, shape (|C|, M).

        Computed in log space with zero-factor counting so that a
        single zero factor (an object certainly closer than ``e_j``)
        is handled exactly instead of through 0/0 division.
        """
        survival = 1.0 - self._cdf_matrix
        zero = survival <= 0.0
        safe = np.where(zero, 1.0, survival)
        logs = np.log(safe)
        col_zero_count = zero.sum(axis=0)
        col_log_sum = logs.sum(axis=0)
        zeros_excluding_self = col_zero_count[None, :] - zero.astype(np.int64)
        log_excluding_self = col_log_sum[None, :] - logs
        z = np.where(zeros_excluding_self > 0, 0.0, np.exp(log_excluding_self))
        np.clip(z, 0.0, 1.0, out=z)
        z.flags.writeable = False
        return z

    # ------------------------------------------------------------------
    # Per-subregion qualification-probability bounds (Lemma 2 / Eq. 5)
    # ------------------------------------------------------------------

    @cached_property
    def q_lower(self) -> np.ndarray:
        """``q_ij.l`` — L-SR's lower bound per inner subregion, (|C|, M−1).

        Lemma 2: ``q_ij.l = (1/c_j) · Π_{k≠i} (1 − D_k(e_j))``.  With
        ``c_j = 1`` and no interior-zero pdfs the product is 1 and the
        bound reduces to the paper's special case ``q_ij.l = 1``.

        Entries with ``s_ij = 0`` are set to 0: the conditional
        probability is undefined on a null event and Equation 4
        multiplies it by ``s_ij`` anyway.
        """
        divisor = np.where(self.counts > 0, self.counts, 1).astype(float)
        q = self.Z[:, :-1] / divisor[None, :]
        q[self.s_inner <= 0.0] = 0.0
        np.clip(q, 0.0, 1.0, out=q)
        q.flags.writeable = False
        return q

    @cached_property
    def q_upper(self) -> np.ndarray:
        """``q_ij.u`` — U-SR's upper bound per inner subregion, (|C|, M−1).

        Equation 5 (in the form of Equation 11):
        ``q_ij.u = ½ (Z_i(e_{j+1}) + Z_i(e_j))``.

        As with :attr:`q_lower`, entries with ``s_ij = 0`` are zeroed.
        """
        q = 0.5 * (self.Z[:, 1:] + self.Z[:, :-1])
        q[self.s_inner <= 0.0] = 0.0
        np.clip(q, 0.0, 1.0, out=q)
        q.flags.writeable = False
        return q

    # ------------------------------------------------------------------
    # Named accessors matching the paper's notation (used by tests)
    # ------------------------------------------------------------------

    def subregion_probability(self, i: int, j: int) -> float:
        """``s_ij`` with 0-based ``i`` and 0-based inner subregion ``j``;
        ``j = n_inner`` addresses the rightmost subregion."""
        if j == self.n_inner:
            return float(self.s_right[i])
        return float(self.s_inner[i, j])

    def cdf_at_edge(self, i: int, j: int) -> float:
        """``D_i(e_j)`` with 0-based indices (``j`` up to ``n_inner``)."""
        return float(self._cdf_matrix[i, j])

    def index_of(self, key: Hashable) -> int:
        """Row index of the candidate with identifier ``key``."""
        for idx, dist in enumerate(self._distributions):
            if dist.key == key:
                return idx
        raise KeyError(key)
