"""Probabilistic k-nearest-neighbour queries — the paper's future work.

Section VI lists "the evaluation of k-NN queries" as future work; this
module provides that extension on top of the same substrate:

* :func:`knn_qualification_probabilities` — the exact probability that
  each object is among the ``k`` nearest neighbours of ``q``:

      p_i(k) = ∫ d_i(r) · Pr[at most k−1 other objects closer than r] dr

  Conditioned on ``R_i = r`` the "closer" indicators are independent
  Bernoullis with success probabilities ``D_j(r)``, so the inner
  probability is a Poisson-binomial cdf
  (:mod:`repro.numerics.poisson_binomial`).  On each piece of the
  global breakpoint grid the integrand is again a polynomial, so
  Gauss–Legendre evaluates it exactly.

* :class:`CKNNEngine` — a constrained (threshold/tolerance) k-NN query
  answered with an RS-style verifier generalisation: with ``f_min^k``
  the k-th smallest far point, any object farther than ``f_min^k`` has
  at least ``k`` objects certainly closer, hence

      p_i(k).u ≤ D_i(f_min^k)

  which filters and fails most objects before any integration.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.types import AnswerRecord, CPNNQuery, Label
from repro.numerics.poisson_binomial import prob_at_most_vectorized
from repro.numerics.quadrature import gauss_legendre_nodes, nodes_for_degree
from repro.uncertainty.distance import DistanceDistribution

__all__ = [
    "CKNNEngine",
    "knn_probability_bounds",
    "knn_qualification_probabilities",
    "kth_smallest_far",
]


def kth_smallest_far(distributions: Sequence[DistanceDistribution], k: int) -> float:
    """``f_min^k`` — the k-th smallest far point of the candidate set."""
    fars = sorted(d.far for d in distributions)
    if not 1 <= k <= len(fars):
        raise ValueError("k must lie in [1, number of objects]")
    return fars[k - 1]


def knn_probability_bounds(
    distributions: Sequence[DistanceDistribution], k: int
) -> list[tuple[float, float]]:
    """Cheap algebraic bounds on ``Pr[object i among the k NNs]``.

    The RS-style pair of observations, one per side:

    * **upper** — with ``f_min^k`` the k-th smallest far point, any
      distance beyond it certainly has ≥ k objects closer, so
      ``p_i(k).u ≤ D_i(f_min^k)``;
    * **lower** — with ``n^k_{-i}`` the k-th smallest *near* point
      among the *other* objects, any distance below it can have at
      most k−1 others closer, so ``p_i(k).l ≥ D_i(n^k_{-i})``
      (evaluated just below the point; the cdf is continuous for
      histogram models, so the cdf value itself is sound).

    Both bounds cost O(|C| log |C|) total — no integration.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = len(distributions)
    if k >= n:
        return [(1.0, 1.0)] * n
    fmin_k = kth_smallest_far(distributions, k)
    nears = sorted(d.near for d in distributions)
    bounds = []
    for dist in distributions:
        upper = float(dist.cdf(fmin_k))
        # k-th smallest near point among the others: drop one instance
        # of this object's own near point from the sorted list.
        own_index = nears.index(dist.near)
        others = nears[:own_index] + nears[own_index + 1 :]
        lower_cut = others[k - 1]
        lower = float(dist.cdf(lower_cut))
        bounds.append((min(lower, upper), upper))
    return bounds


def _breakpoint_grid(
    distributions: Sequence[DistanceDistribution], lo: float, hi: float
) -> np.ndarray:
    """All pdf breakpoints of all objects inside [lo, hi]."""
    pool = [np.asarray([lo, hi])]
    for dist in distributions:
        edges = dist.breakpoints
        pool.append(edges[(edges > lo) & (edges < hi)])
    grid = np.unique(np.concatenate(pool))
    return grid[(grid >= lo) & (grid <= hi)]


def knn_qualification_probabilities(
    objects: Sequence,
    q,
    k: int,
    quadrature_margin: int = 1,
) -> dict[Hashable, float]:
    """Exact ``Pr[object is among the k NNs of q]`` for every object.

    ``objects`` may be ``SpatialUncertain`` objects or ready-made
    distance distributions.  Objects with zero probability (entirely
    beyond ``f_min^k``) are reported as 0.0.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    distributions = [
        obj if isinstance(obj, DistanceDistribution) else obj.distance_distribution(q)
        for obj in objects
    ]
    if k >= len(distributions):
        # Every object is trivially among the k nearest.
        return {d.key: 1.0 for d in distributions}
    fmin_k = kth_smallest_far(distributions, k)
    n = len(distributions)
    degree = n - 1
    n_nodes = nodes_for_degree(degree) + int(quadrature_margin)
    xs_unit, ws = gauss_legendre_nodes(n_nodes)

    results: dict[Hashable, float] = {}
    for i, dist in enumerate(distributions):
        lo = dist.near
        hi = min(dist.far, fmin_k)
        if hi <= lo:
            results[dist.key] = 0.0
            continue
        grid = _breakpoint_grid(distributions, lo, hi)
        total = 0.0
        others = [d for j, d in enumerate(distributions) if j != i]
        for a, b in zip(grid[:-1], grid[1:]):
            if b <= a:
                continue
            half = 0.5 * (b - a)
            xs = 0.5 * (a + b) + half * xs_unit
            closer = np.vstack([np.asarray(d.cdf(xs)) for d in others])
            at_most = prob_at_most_vectorized(closer, k - 1)
            density = np.asarray(dist.pdf(xs))
            total += half * float(ws @ (density * at_most))
        results[dist.key] = min(max(total, 0.0), 1.0)
    return results


class CKNNEngine:
    """Constrained probabilistic k-NN: threshold/tolerance semantics of
    Definition 1 applied to k-NN qualification probabilities.

    The verification stage uses the RS-style bound
    ``p_i(k).u ≤ D_i(f_min^k)``; objects that survive it are resolved
    with the exact integral.  (Tolerance only matters in the verifier
    stage: exact values have zero bound width.)
    """

    def __init__(self, objects: Sequence, k: int) -> None:
        if not objects:
            raise ValueError("CKNNEngine requires at least one object")
        if k < 1:
            raise ValueError("k must be at least 1")
        self._objects = tuple(objects)
        self._k = int(k)

    @property
    def k(self) -> int:
        return self._k

    def query(
        self, q, threshold: float = 0.3, tolerance: float = 0.0
    ) -> tuple[tuple, list[AnswerRecord]]:
        """Returns (answer keys, per-object records)."""
        query = CPNNQuery(q, threshold, tolerance)
        distributions = [obj.distance_distribution(q) for obj in self._objects]
        k = min(self._k, len(distributions))
        records: list[AnswerRecord] = []
        if k >= len(distributions):
            answers = tuple(d.key for d in distributions)
            records = [
                AnswerRecord(key=d.key, label=Label.SATISFY, lower=1.0, upper=1.0, exact=1.0)
                for d in distributions
            ]
            return answers, records
        # RS-style verification on both sides (no integration):
        # fail when the upper bound misses P, satisfy when the lower
        # bound clears it, integrate exactly only for the rest.
        bounds = knn_probability_bounds(distributions, k)
        needs_exact = [
            i
            for i, (lower, upper) in enumerate(bounds)
            if lower < query.threshold <= upper
        ]
        exact_probs: dict[Hashable, float] = {}
        if needs_exact:
            exact_probs = knn_qualification_probabilities(
                distributions, q, k
            )
        answers = []
        for i, dist in enumerate(distributions):
            lower, upper = bounds[i]
            if upper < query.threshold:
                records.append(
                    AnswerRecord(
                        key=dist.key,
                        label=Label.FAIL,
                        lower=lower,
                        upper=upper,
                        exact=None,
                    )
                )
                continue
            if lower >= query.threshold:
                records.append(
                    AnswerRecord(
                        key=dist.key,
                        label=Label.SATISFY,
                        lower=lower,
                        upper=upper,
                        exact=None,
                    )
                )
                answers.append(dist.key)
                continue
            p = exact_probs[dist.key]
            label = Label.SATISFY if p >= query.threshold else Label.FAIL
            records.append(
                AnswerRecord(
                    key=dist.key, label=label, lower=p, upper=p, exact=p
                )
            )
            if label is Label.SATISFY:
                answers.append(dist.key)
        return tuple(answers), records
