"""Probabilistic k-nearest-neighbour queries — the paper's future work.

Section VI lists "the evaluation of k-NN queries" as future work; this
module provides that extension on top of the same substrate:

* :func:`knn_qualification_probabilities` — the exact probability that
  each object is among the ``k`` nearest neighbours of ``q``:

      p_i(k) = ∫ d_i(r) · Pr[at most k−1 other objects closer than r] dr

  Conditioned on ``R_i = r`` the "closer" indicators are independent
  Bernoullis with success probabilities ``D_j(r)``, so the inner
  probability is a Poisson-binomial cdf
  (:mod:`repro.numerics.poisson_binomial`).  On each piece of the
  global breakpoint grid the integrand is again a polynomial, so
  Gauss–Legendre evaluates it exactly.

* :class:`CKNNEngine` — a constrained (threshold/tolerance) k-NN query
  answered with an RS-style verifier generalisation: with ``f_min^k``
  the k-th smallest far point, any object farther than ``f_min^k`` has
  at least ``k`` objects certainly closer, hence

      p_i(k).u ≤ D_i(f_min^k)

  which filters and fails most objects before any integration.
"""

from __future__ import annotations

import time
import warnings
from typing import Hashable, Sequence

import numpy as np

from repro.core.types import AnswerRecord, CPNNQuery, Label
from repro.numerics.poisson_binomial import prob_at_most_vectorized
from repro.numerics.quadrature import gauss_legendre_nodes, nodes_for_degree
from repro.uncertainty.columnar import DistributionPack
from repro.uncertainty.distance import DistanceDistribution
from repro.uncertainty.parametric.pack import MixedDistributionPack

__all__ = [
    "CKNNEngine",
    "knn_analytic_eval",
    "knn_probability_bounds",
    "knn_qualification_probabilities",
    "knn_routed_eval",
    "kth_smallest_far",
]

#: Cap on ``|survivors| * points`` cells evaluated per exact-integration
#: chunk — bounds the transient cdf matrices regardless of grid size.
_EXACT_MAX_CELLS = 1 << 22


def kth_smallest_far(distributions: Sequence[DistanceDistribution], k: int) -> float:
    """``f_min^k`` — the k-th smallest far point of the candidate set."""
    fars = sorted(d.far for d in distributions)
    if not 1 <= k <= len(fars):
        raise ValueError("k must lie in [1, number of objects]")
    return fars[k - 1]


def knn_probability_bounds(
    distributions: Sequence[DistanceDistribution], k: int
) -> list[tuple[float, float]]:
    """Cheap algebraic bounds on ``Pr[object i among the k NNs]``.

    The RS-style pair of observations, one per side:

    * **upper** — with ``f_min^k`` the k-th smallest far point, any
      distance beyond it certainly has ≥ k objects closer, so
      ``p_i(k).u ≤ D_i(f_min^k)``;
    * **lower** — with ``n^k_{-i}`` the k-th smallest *near* point
      among the *other* objects, any distance below it can have at
      most k−1 others closer, so ``p_i(k).l ≥ D_i(n^k_{-i})``
      (evaluated just below the point; the cdf is continuous for
      histogram models, so the cdf value itself is sound).

    Both bounds cost O(|C| log |C|) total — no integration.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = len(distributions)
    if k >= n:
        return [(1.0, 1.0)] * n
    fmin_k = kth_smallest_far(distributions, k)
    nears = sorted(d.near for d in distributions)
    bounds = []
    for dist in distributions:
        upper = float(dist.cdf(fmin_k))
        # k-th smallest near point among the others: drop one instance
        # of this object's own near point from the sorted list.
        own_index = nears.index(dist.near)
        others = nears[:own_index] + nears[own_index + 1 :]
        lower_cut = others[k - 1]
        lower = float(dist.cdf(lower_cut))
        bounds.append((min(lower, upper), upper))
    return bounds


def _breakpoint_grid(
    distributions: Sequence[DistanceDistribution], lo: float, hi: float
) -> np.ndarray:
    """All pdf breakpoints of all objects inside [lo, hi]."""
    pool = [np.asarray([lo, hi])]
    for dist in distributions:
        edges = dist.breakpoints
        pool.append(edges[(edges > lo) & (edges < hi)])
    grid = np.unique(np.concatenate(pool))
    return grid[(grid >= lo) & (grid <= hi)]


def knn_qualification_probabilities(
    objects: Sequence,
    q,
    k: int,
    quadrature_margin: int = 1,
) -> dict[Hashable, float]:
    """Exact ``Pr[object is among the k NNs of q]`` for every object.

    ``objects`` may be ``SpatialUncertain`` objects or ready-made
    distance distributions.  Objects with zero probability (entirely
    beyond ``f_min^k``) are reported as 0.0.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    distributions = [
        obj if isinstance(obj, DistanceDistribution) else obj.distance_distribution(q)
        for obj in objects
    ]
    if k >= len(distributions):
        # Every object is trivially among the k nearest.
        return {d.key: 1.0 for d in distributions}
    fmin_k = kth_smallest_far(distributions, k)
    n = len(distributions)
    degree = n - 1
    n_nodes = nodes_for_degree(degree) + int(quadrature_margin)
    xs_unit, ws = gauss_legendre_nodes(n_nodes)

    results: dict[Hashable, float] = {}
    for i, dist in enumerate(distributions):
        lo = dist.near
        hi = min(dist.far, fmin_k)
        if hi <= lo:
            results[dist.key] = 0.0
            continue
        grid = _breakpoint_grid(distributions, lo, hi)
        total = 0.0
        others = [d for j, d in enumerate(distributions) if j != i]
        for a, b in zip(grid[:-1], grid[1:]):
            if b <= a:
                continue
            half = 0.5 * (b - a)
            xs = 0.5 * (a + b) + half * xs_unit
            closer = np.vstack([np.asarray(d.cdf(xs)) for d in others])
            at_most = prob_at_most_vectorized(closer, k - 1)
            density = np.asarray(dist.pdf(xs))
            total += half * float(ws @ (density * at_most))
        results[dist.key] = min(max(total, 0.0), 1.0)
    return results


def _routed_exact(
    pack: DistributionPack,
    distributions: Sequence[DistanceDistribution],
    needed: np.ndarray,
    k: int,
    fmin_k: float,
    total: int,
    quadrature_margin: int,
) -> dict[int, float]:
    """Exact ``p_i(k)`` for the survivor positions in ``needed``.

    Bit-identical replay of :func:`knn_qualification_probabilities`
    restricted to the filtered candidate set: the quadrature degree
    still comes from the *total* object count (so the node set is
    unchanged), pruned objects contribute neither breakpoints (their
    supports lie beyond ``f_min^k``, outside every integration range)
    nor Poisson-binomial factors (their "closer" probability is exactly
    0 at every node, an exact no-op of the row-sequential DP), and the
    per-segment accumulation replays the scalar loop's float operations
    in order.  The survivor cdf matrix is evaluated through the
    :class:`~repro.uncertainty.columnar.DistributionPack` kernels
    instead of one ``cdf`` call per other object per segment.
    """
    degree = total - 1
    n_nodes = nodes_for_degree(degree) + int(quadrature_margin)
    xs_unit, ws = gauss_legendre_nodes(n_nodes)
    out: dict[int, float] = {}
    per_chunk = max(1, _EXACT_MAX_CELLS // max(pack.size * n_nodes, 1))
    for i in needed:
        i = int(i)
        dist = distributions[i]
        lo = dist.near
        hi = min(dist.far, fmin_k)
        if hi <= lo:
            out[i] = 0.0
            continue
        grid = _breakpoint_grid(distributions, lo, hi)
        segments = [(a, b) for a, b in zip(grid[:-1], grid[1:]) if b > a]
        total_p = 0.0
        for start in range(0, len(segments), per_chunk):
            chunk = segments[start : start + per_chunk]
            halves = []
            xs_parts = []
            for a, b in chunk:
                half = 0.5 * (b - a)
                halves.append(half)
                xs_parts.append(0.5 * (a + b) + half * xs_unit)
            xs_all = np.concatenate(xs_parts)
            closer = np.delete(pack.cdf_many(xs_all), i, axis=0)
            at_most = prob_at_most_vectorized(closer, k - 1)
            density = np.asarray(dist.pdf(xs_all))
            for s, half in enumerate(halves):
                sl = slice(s * n_nodes, (s + 1) * n_nodes)
                total_p += half * float(ws @ (density[sl] * at_most[sl]))
        out[i] = min(max(total_p, 0.0), 1.0)
    return out


def knn_analytic_eval(
    distances: Sequence,
    survivor_indices: np.ndarray,
    keys: Sequence[Hashable],
    k: int,
    threshold: float,
    total: int,
) -> tuple[tuple, list[AnswerRecord]] | None:
    """Histogram-free constrained k-NN over closed-form distance laws.

    The analytic sibling of :func:`knn_routed_eval` for candidate sets
    whose every member carries a
    :class:`~repro.uncertainty.parametric.base.ParametricDistance`
    (the k-NN leg of the parametric fast path, DESIGN.md §15/§17):
    the RS-style bound pair —

    * upper: ``p_i(k) ≤ D_i(f_min^k)`` (beyond the k-th smallest far
      point, at least ``k`` objects are certainly closer), and
    * lower: ``p_i(k) ≥ D_i(n^k_{-i})`` (below the k-th smallest
      *other* near point, at most ``k−1`` others can be closer)

    — holds for the **exact** distance cdfs just as it does for their
    histogram approximations, so one
    :class:`~repro.uncertainty.parametric.pack.MixedDistributionPack`
    cdf sweep settles objects without materialising a single histogram.
    Bounds (and hence classifications) are with respect to the true
    model, like every analytic-tier answer.

    Returns ``(answers, records)`` when the bounds decide **every**
    survivor, else ``None``: the exact-integration tier
    (:func:`_routed_exact`) is certified only for piecewise-polynomial
    histogram pdfs, so undecided survivors fall back to the standard
    histogram pipeline — same records, histogram-certified exact
    values.  Deterministic either way, which is what the continuous
    tier's replay contract needs.
    """
    m = len(distances)
    pack = MixedDistributionPack(distances)
    fmin_k = float(np.sort(pack.far)[k - 1])
    upper = np.asarray(pack.cdf_many(fmin_k), dtype=float)
    nears = pack.near
    if m >= k + 1:
        # The same cut selection as knn_routed_eval: an object whose own
        # near point is among the k smallest drops it, shifting its
        # "k-th smallest other" one slot up.
        sorted_nears = np.sort(nears)
        cut_low = float(sorted_nears[k - 1])
        cut_high = float(sorted_nears[k])
        at_low = np.asarray(pack.cdf_many(cut_low), dtype=float)
        at_high = np.asarray(pack.cdf_many(cut_high), dtype=float)
        first_idx = np.searchsorted(sorted_nears, nears, side="left")
        lower = np.where(first_idx <= k - 1, at_high, at_low)
        lower = np.minimum(lower, upper)
    else:
        lower = upper.copy()

    fail = upper < threshold
    satisfy = ~fail & (lower >= threshold)
    if not bool(np.all(fail | satisfy)):
        return None

    position = {int(g): i for i, g in enumerate(survivor_indices)}
    answers: list[Hashable] = []
    records: list[AnswerRecord] = []
    for j in range(total):
        i = position.get(j)
        if i is None:
            records.append(
                AnswerRecord(
                    key=keys[j], label=Label.FAIL, lower=0.0, upper=0.0, exact=None
                )
            )
            continue
        label = Label.SATISFY if satisfy[i] else Label.FAIL
        records.append(
            AnswerRecord(
                key=keys[j],
                label=label,
                lower=float(lower[i]),
                upper=float(upper[i]),
                exact=None,
            )
        )
        if label is Label.SATISFY:
            answers.append(keys[j])
    return tuple(answers), records


def knn_routed_eval(
    distributions: Sequence[DistanceDistribution],
    survivor_indices: np.ndarray,
    keys: Sequence[Hashable],
    k: int,
    threshold: float,
    total: int,
    quadrature_margin: int = 1,
) -> tuple[tuple, list[AnswerRecord], int, float]:
    """Constrained k-NN over a *filtered* candidate set.

    ``distributions`` are the distance distributions of the objects
    surviving ``f_min^k`` MBR filtering (positions ``survivor_indices``
    in the full, ``total``-object collection whose keys are ``keys``),
    in insertion order.  Returns ``(answers, records, n_exact,
    exact_seconds)`` with one record per object — **bit-identical** to
    the unfiltered scalar path (:meth:`CKNNEngine.query`):

    * pruned objects get the bounds the scalar path would compute for
      them, ``(0, 0)``, without touching their pdfs (their supports lie
      strictly beyond ``f_min^k``);
    * ``f_min^k`` over survivors equals the all-object value (the k
      smallest far points always survive MBR filtering);
    * the RS-style lower cut is taken among survivor near points; when
      that differs from the all-object cut, both cuts exceed
      ``f_min^k``, where ``min(lower, upper)`` collapses to ``upper``
      either way;
    * exact integrals replay :func:`knn_qualification_probabilities`'s
      float operations with the all-object quadrature degree
      (see :func:`_routed_exact`).

    Requires ``1 <= k < total`` (the ``k >= total`` trivial case is the
    caller's) and ``len(distributions) >= k`` (guaranteed by the
    filter).
    """
    m = len(distributions)
    pack = DistributionPack(distributions)
    fmin_k = float(np.sort(pack.far)[k - 1])
    upper = np.asarray(pack.cdf_many(fmin_k), dtype=float)
    nears = pack.near
    if m >= k + 1:
        sorted_nears = np.sort(nears)
        cut_low = float(sorted_nears[k - 1])
        cut_high = float(sorted_nears[k])
        at_low = np.asarray(pack.cdf_many(cut_low), dtype=float)
        at_high = np.asarray(pack.cdf_many(cut_high), dtype=float)
        first_idx = np.searchsorted(sorted_nears, nears, side="left")
        lower = np.where(first_idx <= k - 1, at_high, at_low)
        lower = np.minimum(lower, upper)
    else:
        # Exactly k survivors: the scalar path's k-th smallest "other"
        # near point is beyond the pruning radius, where the clamped
        # lower bound collapses to the upper bound.
        lower = upper.copy()

    fail = upper < threshold
    satisfy = ~fail & (lower >= threshold)
    needed = np.flatnonzero(~fail & ~satisfy)
    exact: dict[int, float] = {}
    exact_seconds = 0.0
    if needed.size:
        tick = time.perf_counter()
        exact = _routed_exact(
            pack, distributions, needed, k, fmin_k, total, quadrature_margin
        )
        exact_seconds = time.perf_counter() - tick

    position = {int(g): i for i, g in enumerate(survivor_indices)}
    answers: list[Hashable] = []
    records: list[AnswerRecord] = []
    for j in range(total):
        i = position.get(j)
        if i is None:
            records.append(
                AnswerRecord(
                    key=keys[j], label=Label.FAIL, lower=0.0, upper=0.0, exact=None
                )
            )
            continue
        if fail[i]:
            records.append(
                AnswerRecord(
                    key=keys[j],
                    label=Label.FAIL,
                    lower=float(lower[i]),
                    upper=float(upper[i]),
                    exact=None,
                )
            )
            continue
        if satisfy[i]:
            records.append(
                AnswerRecord(
                    key=keys[j],
                    label=Label.SATISFY,
                    lower=float(lower[i]),
                    upper=float(upper[i]),
                    exact=None,
                )
            )
            answers.append(keys[j])
            continue
        p = exact[i]
        label = Label.SATISFY if p >= threshold else Label.FAIL
        records.append(
            AnswerRecord(key=keys[j], label=label, lower=p, upper=p, exact=p)
        )
        if label is Label.SATISFY:
            answers.append(keys[j])
    return tuple(answers), records, len(needed), exact_seconds


class CKNNEngine:
    """Constrained probabilistic k-NN: threshold/tolerance semantics of
    Definition 1 applied to k-NN qualification probabilities.

    .. deprecated::
        Superseded by ``UncertainEngine.execute(CKNNQuery(...))``, which
        adds MBR filtering, distribution caching, columnar bound
        kernels, and the batch path while returning bit-identical
        answers.  Kept as the reference scalar implementation.

    The verification stage uses the RS-style bound
    ``p_i(k).u ≤ D_i(f_min^k)``; objects that survive it are resolved
    with the exact integral.  (Tolerance only matters in the verifier
    stage: exact values have zero bound width.)
    """

    def __init__(self, objects: Sequence, k: int) -> None:
        warnings.warn(
            "CKNNEngine is deprecated; use "
            "UncertainEngine.execute(CKNNQuery(q, k=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not objects:
            raise ValueError("CKNNEngine requires at least one object")
        if k < 1:
            raise ValueError("k must be at least 1")
        self._objects = tuple(objects)
        self._k = int(k)

    @property
    def k(self) -> int:
        return self._k

    def query(
        self, q, threshold: float = 0.3, tolerance: float = 0.0
    ) -> tuple[tuple, list[AnswerRecord]]:
        """Returns (answer keys, per-object records)."""
        query = CPNNQuery(q, threshold, tolerance)
        distributions = [obj.distance_distribution(q) for obj in self._objects]
        k = min(self._k, len(distributions))
        records: list[AnswerRecord] = []
        if k >= len(distributions):
            answers = tuple(d.key for d in distributions)
            records = [
                AnswerRecord(key=d.key, label=Label.SATISFY, lower=1.0, upper=1.0, exact=1.0)
                for d in distributions
            ]
            return answers, records
        # RS-style verification on both sides (no integration):
        # fail when the upper bound misses P, satisfy when the lower
        # bound clears it, integrate exactly only for the rest.
        bounds = knn_probability_bounds(distributions, k)
        needs_exact = [
            i
            for i, (lower, upper) in enumerate(bounds)
            if lower < query.threshold <= upper
        ]
        exact_probs: dict[Hashable, float] = {}
        if needs_exact:
            exact_probs = knn_qualification_probabilities(
                distributions, q, k
            )
        answers = []
        for i, dist in enumerate(distributions):
            lower, upper = bounds[i]
            if upper < query.threshold:
                records.append(
                    AnswerRecord(
                        key=dist.key,
                        label=Label.FAIL,
                        lower=lower,
                        upper=upper,
                        exact=None,
                    )
                )
                continue
            if lower >= query.threshold:
                records.append(
                    AnswerRecord(
                        key=dist.key,
                        label=Label.SATISFY,
                        lower=lower,
                        upper=upper,
                        exact=None,
                    )
                )
                answers.append(dist.key)
                continue
            p = exact_probs[dist.key]
            label = Label.SATISFY if p >= query.threshold else Label.FAIL
            records.append(
                AnswerRecord(
                    key=dist.key, label=label, lower=p, upper=p, exact=p
                )
            )
            if label is Label.SATISFY:
                answers.append(dist.key)
        return tuple(answers), records
