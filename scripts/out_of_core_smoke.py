"""Low-memory proof: an mmap column store answers a workload bigger than RAM.

The smoke runs under a hard ``RLIMIT_AS`` address-space cap (applied
here, and belt-and-braces via ``ulimit -v`` in CI) and

1. **streams** a histogram column set *larger than the cap* to disk
   through :meth:`MmapStore.build` — the build peak is one row block,
   never a full column;
2. proves the cap is real: materialising any single flat column with
   ``np.empty`` raises ``MemoryError``;
3. opens the file as a :class:`PagedDistributionPack` and sweeps the
   cdf kernel over **every** row through the bounded window pool,
   comparing spot-checked row blocks **bit for bit** against reference
   blocks regenerated from the same seeds;
4. runs a full ``storage="mmap"`` engine next to a ``storage="ram"``
   engine on the same objects and demands identical answers and
   records;
5. asserts the buffer-pool accounting shows real out-of-core behaviour:
   faults exceed the pool capacity, evictions happened, and resident
   bytes never exceeded the configured budget.

Usage::

    python scripts/out_of_core_smoke.py            # 512 MiB cap
    OUT_OF_CORE_CAP_MB=1024 python scripts/out_of_core_smoke.py

Exit code 0 means every assertion held.
"""

import os

# One BLAS thread: thread pools reserve hundreds of MB of address
# space per thread, which would eat the cap before the test starts.
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

import resource  # noqa: E402
import sys  # noqa: E402

import numpy as np  # noqa: E402

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.core.engine import EngineConfig, UncertainEngine  # noqa: E402
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery  # noqa: E402
from repro.storage import MmapStore  # noqa: E402
from repro.uncertainty.columnar import DistributionPack  # noqa: E402
from repro.uncertainty.objects import UncertainObject  # noqa: E402

CAP_MB = int(os.environ.get("OUT_OF_CORE_CAP_MB", "512"))
SEED = 20080612
BINS = 64
ROW_BLOCK = 8192

#: Evaluation points for the full-corpus sweep (scalar per pass keeps
#: the output at 8·N bytes — the corpus, not the answer, is what must
#: not fit).
SWEEP_XS = (3.0, 11.0, 42.0)


def _cap_address_space() -> int:
    """Apply the RLIMIT_AS cap (no-op if the shell already set a
    tighter one via ``ulimit -v``); returns the effective cap bytes."""
    want = CAP_MB << 20
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    if soft != resource.RLIM_INFINITY and soft <= want:
        return soft
    resource.setrlimit(resource.RLIMIT_AS, (want, hard))
    return want


def _block_arrays(block: int, n_rows: int) -> dict:
    """Deterministic histogram rows for block ``block`` — regenerable
    at any time from ``(SEED, block)``, so reference data never has to
    stay resident."""
    rng = np.random.default_rng((SEED, block))
    lo = rng.uniform(0.0, 50.0, n_rows)
    widths = rng.uniform(1e-3, 2.0, (n_rows, BINS))
    edges = np.concatenate(
        [lo[:, None], lo[:, None] + np.cumsum(widths, axis=1)], axis=1
    )
    densities = rng.uniform(1e-6, 3.0, (n_rows, BINS))
    mass = densities * widths
    mass /= mass.sum(axis=1)[:, None]
    knots = np.concatenate(
        [np.zeros((n_rows, 1)), np.cumsum(mass, axis=1)], axis=1
    )
    densities = mass / widths
    return {
        "edges": edges,
        "knots": knots,
        "densities": densities,
        "sizes": np.full(n_rows, BINS + 1, dtype=np.int64),
        "totals": knots[:, -1].copy(),
        "near": edges[:, 0].copy(),
        "far": edges[:, -1].copy(),
    }


def _reference_pack(block: int, n_rows: int) -> DistributionPack:
    """Rows of ``block`` as a resident pack, rebuilt from the seed."""
    arrays = _block_arrays(block, n_rows)
    pack = object.__new__(DistributionPack)
    pack._finish(
        arrays["edges"].reshape(-1),
        arrays["knots"].reshape(-1),
        arrays["densities"].reshape(-1),
        arrays["sizes"].astype(np.intp),
    )
    return pack


def build_corpus(target_bytes: int, directory: str | None) -> tuple:
    """Stream blocks to disk until the file exceeds ``target_bytes``."""
    bytes_per_row = 8 * (2 * (BINS + 1) + BINS) + 8 * 4
    n_rows = -(-target_bytes // bytes_per_row)  # ceil
    n_rows = -(-n_rows // ROW_BLOCK) * ROW_BLOCK  # whole blocks
    n_edges = n_rows * (BINS + 1)
    writer = MmapStore.build(
        {
            "edges": (np.float64, (n_edges,)),
            "knots": (np.float64, (n_edges,)),
            "densities": (np.float64, (n_rows * BINS,)),
            "sizes": (np.int64, (n_rows,)),
            "totals": (np.float64, (n_rows,)),
            "near": (np.float64, (n_rows,)),
            "far": (np.float64, (n_rows,)),
        },
        directory=directory,
        page_bytes=1 << 20,
        pool_pages=8,
    )
    try:
        for block in range(n_rows // ROW_BLOCK):
            arrays = _block_arrays(block, ROW_BLOCK)
            for name, chunk in arrays.items():
                writer.append(
                    name, chunk.reshape(-1) if chunk.ndim > 1 else chunk
                )
    except BaseException:
        writer.abort()
        raise
    store = writer.finish()
    return store, n_rows


def check_corpus(store: MmapStore, n_rows: int, cap_bytes: int) -> None:
    nbytes = store.descriptor().nbytes
    assert nbytes > cap_bytes, (
        f"corpus {nbytes >> 20} MiB does not exceed the {cap_bytes >> 20} "
        "MiB cap — the smoke proves nothing"
    )
    print(f"corpus: {n_rows} rows, {nbytes >> 20} MiB on disk "
          f"(cap {cap_bytes >> 20} MiB)", flush=True)

    # The cap is real: a buffer the size of the corpus (which exceeds
    # the cap by construction) cannot be allocated at all.
    try:
        full = np.empty(nbytes, dtype=np.uint8)
    except MemoryError:
        pass
    else:  # pragma: no cover - only on a mis-capped run
        del full
        raise AssertionError(
            "np.empty materialised a corpus-sized buffer — RLIMIT_AS "
            "cap is not in effect"
        )
    print("cap proof: corpus-sized np.empty raises MemoryError", flush=True)

    pack = DistributionPack.from_store(store)
    assert pack.size == n_rows

    # Full-corpus sweeps: every row's cdf at each point, streamed
    # through the window pool.  Output is 8·N bytes per pass.
    store.reset_stats()
    sweeps = [pack.cdf_many(x) for x in SWEEP_XS]
    stats = store.stats()
    assert stats["page_faults"] > stats["pool_pages"], stats
    assert stats["evictions"] > 0, stats
    assert stats["resident_bytes"] <= stats["pool_pages"] * stats["page_bytes"], stats
    print(
        f"sweep: {len(SWEEP_XS)} passes x {n_rows} rows — "
        f"{stats['page_faults']} faults, {stats['evictions']} evictions, "
        f"resident <= {stats['resident_bytes'] >> 20} MiB, "
        f"hit rate {stats['hit_rate']:.3f}",
        flush=True,
    )

    # Spot-check blocks bit for bit against regenerated references.
    n_blocks = n_rows // ROW_BLOCK
    rng = np.random.default_rng(SEED + 1)
    checked = sorted(
        {0, n_blocks // 2, n_blocks - 1}
        | set(map(int, rng.integers(0, n_blocks, 3)))
    )
    xs = np.sort(rng.uniform(-5.0, 200.0, 48))
    for block in checked:
        r0 = block * ROW_BLOCK
        ref = _reference_pack(block, ROW_BLOCK)
        sub = pack.take(np.arange(r0, r0 + ROW_BLOCK))
        got = sub.cdf_many(xs)
        want = ref.cdf_many(xs)
        assert np.array_equal(got, want), f"cdf mismatch in block {block}"
        u = rng.uniform(0.0, 1.0, (ROW_BLOCK, 4)) * ref.totals[:, None]
        assert np.array_equal(sub.ppf_many(u), ref.ppf_many(u)), (
            f"ppf mismatch in block {block}"
        )
        for x, sweep in zip(SWEEP_XS, sweeps):
            assert np.array_equal(
                sweep[r0 : r0 + ROW_BLOCK], ref.cdf_many(float(x))
            ), f"sweep mismatch in block {block} at x={x}"
    print(f"bit-identity: blocks {checked} match regenerated references",
          flush=True)


def check_engine(cap_bytes: int) -> None:
    """A whole mmap engine under the cap answers like a ram engine."""
    rng = np.random.default_rng(SEED + 2)
    objects = [
        UncertainObject.uniform(i, float(lo), float(lo + w))
        for i, (lo, w) in enumerate(
            zip(rng.uniform(0.0, 400.0, 512), rng.uniform(0.5, 4.0, 512))
        )
    ]
    points = rng.uniform(0.0, 400.0, 24)
    specs = [CPNNQuery(float(p), threshold=0.25) for p in points[:12]]
    specs += [CKNNQuery(float(p), k=3, threshold=0.1) for p in points[12:18]]
    specs += [
        CRangeQuery(float(p), radius=8.0, threshold=0.1) for p in points[18:]
    ]
    want = UncertainEngine(list(objects)).execute_batch(specs)
    engine = UncertainEngine(
        list(objects),
        EngineConfig(
            storage="mmap", storage_page_bytes=1 << 13, storage_pool_pages=2
        ),
    )
    try:
        got = engine.execute_batch(specs)
        for w, g in zip(want.results, got.results):
            assert w.answers == g.answers
            assert [
                (r.key, r.label, r.lower, r.upper, r.exact) for r in w.records
            ] == [
                (r.key, r.label, r.lower, r.upper, r.exact) for r in g.records
            ]
        storage = engine.stats()["storage"]
        assert storage["backend"] == "mmap" and storage["stores"] >= 1
        print(
            f"engine: mmap == ram on {len(specs)} mixed specs "
            f"({storage['page_faults']} faults over {storage['stores']} store)",
            flush=True,
        )
    finally:
        engine.close()


def main() -> int:
    cap_bytes = _cap_address_space()
    target = int(cap_bytes * 1.5)
    store, n_rows = build_corpus(
        target, os.environ.get("OUT_OF_CORE_DIR") or None
    )
    try:
        check_corpus(store, n_rows, cap_bytes)
    finally:
        store.close()
    assert not os.path.exists(store.path), "store file survived close()"
    check_engine(cap_bytes)
    print("out-of-core smoke: OK", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
