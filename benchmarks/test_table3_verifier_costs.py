"""Table III bench: verifier/refinement cost scaling with |C| and M.

Expected growth per |C| doubling (M doubles too, by construction):
RS ≈ flat, L-SR and U-SR ≈ ×4 (O(|C|·M)), exact ≈ ×8 (O(|C|²·M))."""

import numpy as np
import pytest

from repro.core.refinement import Refiner
from repro.core.subregions import SubregionTable
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
)
from repro.experiments.table3_verifier_costs import build_candidate_table

SIZES = [32, 64, 128]

_TABLES: dict[int, SubregionTable] = {}


def table_for(size: int) -> SubregionTable:
    if size not in _TABLES:
        _TABLES[size] = build_candidate_table(size, np.random.default_rng(size))
    return _TABLES[size]


@pytest.mark.parametrize("size", SIZES)
def test_rs_cost(benchmark, size):
    verifier = RightmostSubregionVerifier()
    benchmark.group = f"table3 |C|={size}"
    benchmark(lambda: verifier.compute(SubregionTable(table_for(size).distributions)))


@pytest.mark.parametrize("size", SIZES)
def test_lsr_cost(benchmark, size):
    verifier = LowerSubregionVerifier()
    benchmark.group = f"table3 |C|={size}"
    benchmark(lambda: verifier.compute(SubregionTable(table_for(size).distributions)))


@pytest.mark.parametrize("size", SIZES)
def test_usr_cost(benchmark, size):
    verifier = UpperSubregionVerifier()
    benchmark.group = f"table3 |C|={size}"
    benchmark(lambda: verifier.compute(SubregionTable(table_for(size).distributions)))


@pytest.mark.parametrize("size", SIZES)
def test_exact_evaluation_cost(benchmark, size):
    benchmark.group = f"table3 |C|={size}"
    benchmark(lambda: Refiner(table_for(size)).exact_all())
