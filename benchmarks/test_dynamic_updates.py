"""Bench: dynamic updates — incremental maintenance vs full rebuild.

Location-based services replace uncertainty regions on every
dead-reckoning report (Section I).  Before the incremental-maintenance
layer, any interleaved update/query stream degenerated to
rebuild-from-scratch: every insert/remove discarded the whole-batch
MBR filter and the entire table cache.  This module gates the layer on
the :class:`~repro.experiments.workloads.StreamingWorkload` scenario —
2 000 moving objects, 10% dead-reckoning churn per tick, a fixed
monitoring batch — with two acceptance criteria:

* **bit-identity** — every tick's batch answers, records, and pruning
  radii are exactly equal to a *full-rebuild replica* that constructs
  a fresh engine over the same object set each tick;
* **≥ 3× steady-state throughput** over that replica
  (``DYNAMIC_UPDATES_SPEEDUP_FLOOR`` overrides the floor; CI uses a
  generous value because shared runners make wall-clock ratios noisy).
  The measured margin is ~5–6× locally: surviving table entries replay
  memoised results, the batch filter updates by row, and the R-tree
  defers its maintenance entirely for batch-only streams.

The plain insert/remove churn benchmarks at the bottom measure the
update primitives themselves against the 10 000-object surrogate.
"""

import os
import time

import numpy as np

from repro.core.engine import UncertainEngine
from repro.core.types import CPNNQuery
from repro.datasets.longbeach import long_beach_surrogate
from repro.experiments.workloads import StreamingTick, StreamingWorkload
from repro.uncertainty.objects import UncertainObject

#: Streaming workload shape (acceptance: 2 000 objects, 10% churn).
STREAM_OBJECTS = 2_000
STREAM_CHURN = 0.10
STREAM_QUERIES = 24

#: Warm-up ticks before the measured window (cache steady state).
WARMUP_TICKS = 3
MEASURED_TICKS = 6

_STATE: dict = {}


class FullRebuildReplica:
    """The pre-incremental world: every update invalidates everything,
    so each tick answers its batch through a freshly built engine over
    the current object set.  Objects are replaced in place (the same
    order :meth:`UncertainEngine.replace` preserves), which is what
    makes the per-tick comparison a bit-identity check.
    """

    def __init__(self, workload: StreamingWorkload) -> None:
        self._objects = workload.initial_objects()
        self._position = {obj.key: i for i, obj in enumerate(self._objects)}

    def apply(self, tick: StreamingTick) -> None:
        for key, obj in tick.replacements:
            self._objects[self._position[key]] = obj

    def run_tick(self, tick: StreamingTick):
        self.apply(tick)
        engine = UncertainEngine(list(self._objects))
        return engine.execute_batch(list(tick.specs))


def streaming_state() -> dict:
    """Workload + pre-materialised ticks, shared across the gates."""
    if not _STATE:
        workload = StreamingWorkload(
            n_objects=STREAM_OBJECTS,
            churn=STREAM_CHURN,
            n_queries=STREAM_QUERIES,
        )
        ticks = list(workload.ticks(WARMUP_TICKS + MEASURED_TICKS))
        _STATE["workload"] = workload
        _STATE["warmup"] = ticks[:WARMUP_TICKS]
        _STATE["measured"] = ticks[WARMUP_TICKS:]
    return _STATE


def run_incremental(engine: UncertainEngine, ticks) -> list:
    """Apply each tick's reports and answer its batch, incrementally."""
    results = []
    for tick in ticks:
        StreamingWorkload.apply(engine, tick)
        results.append(engine.execute_batch(list(tick.specs)))
    return results


def run_replica(replica: FullRebuildReplica, ticks) -> list:
    return [replica.run_tick(tick) for tick in ticks]


def _assert_batches_identical(incremental, rebuilt) -> None:
    for inc_batch, rep_batch in zip(incremental, rebuilt):
        assert len(inc_batch.results) == len(rep_batch.results)
        for a, b in zip(inc_batch.results, rep_batch.results):
            assert a.answers == b.answers
            assert a.fmin == b.fmin
            assert len(a.records) == len(b.records)
            for x, y in zip(a.records, b.records):
                assert (x.key, x.label, x.lower, x.upper, x.exact) == (
                    y.key,
                    y.label,
                    y.lower,
                    y.upper,
                    y.exact,
                )


def test_streaming_identical_to_full_rebuild():
    """Acceptance (a): the interleaved stream is answer-identical —
    bit for bit, records included — to the full-rebuild replica."""
    state = streaming_state()
    workload = state["workload"]
    engine = workload.make_engine()
    replica = FullRebuildReplica(workload)
    ticks = state["warmup"] + state["measured"]
    _assert_batches_identical(
        run_incremental(engine, ticks), run_replica(replica, ticks)
    )


def test_streaming_speedup_over_full_rebuild():
    """Acceptance (b): ≥ 3× steady-state throughput over the replica.

    Both sides replay the *same* pre-materialised ticks; the
    incremental engine is warmed first so the measured window is the
    steady state the layer targets.  ``DYNAMIC_UPDATES_SPEEDUP_FLOOR``
    overrides the floor (generous in CI).
    """
    state = streaming_state()
    workload = state["workload"]
    engine = workload.make_engine()
    replica = FullRebuildReplica(workload)
    run_incremental(engine, state["warmup"])
    for tick in state["warmup"]:
        replica.apply(tick)

    tick0 = time.perf_counter()
    incremental = run_incremental(engine, state["measured"])
    incremental_s = time.perf_counter() - tick0
    tick0 = time.perf_counter()
    rebuilt = run_replica(replica, state["measured"])
    replica_s = time.perf_counter() - tick0

    _assert_batches_identical(incremental, rebuilt)
    replayed = sum(batch.result_hits for batch in incremental)
    assert replayed > 0, "steady state should replay some memoised results"

    floor = float(os.environ.get("DYNAMIC_UPDATES_SPEEDUP_FLOOR", "3.0"))
    speedup = replica_s / incremental_s
    assert speedup >= floor, (
        f"incremental maintenance must be ≥{floor:.1f}x a full-rebuild "
        f"replica at steady state, got {speedup:.2f}x (incremental "
        f"{incremental_s * 1e3:.1f} ms, replica {replica_s * 1e3:.1f} ms "
        f"over {MEASURED_TICKS} ticks)"
    )


def test_streaming_benchmark(benchmark):
    """pytest-benchmark view of one steady-state tick."""
    state = streaming_state()
    workload = state["workload"]
    engine = workload.make_engine()
    run_incremental(engine, state["warmup"] + state["measured"])
    ticks = state["measured"]
    index = [0]

    def one_tick():
        tick = ticks[index[0] % len(ticks)]
        index[0] += 1
        StreamingWorkload.apply(engine, tick)
        return engine.execute_batch(list(tick.specs))

    benchmark.group = "dynamic updates"
    benchmark.name = (
        f"streaming tick ({STREAM_OBJECTS} obj, "
        f"{int(STREAM_CHURN * 100)}% churn, {STREAM_QUERIES} specs)"
    )
    benchmark(one_tick)


# ----------------------------------------------------------------------
# Update-primitive churn benchmarks (10 000-object surrogate)
# ----------------------------------------------------------------------

_ENGINE: list[UncertainEngine] = []


def engine() -> UncertainEngine:
    if not _ENGINE:
        _ENGINE.append(UncertainEngine(long_beach_surrogate(n=10_000)))
    return _ENGINE[0]


def test_insert_remove_cycle(benchmark):
    eng = engine()
    rng = np.random.default_rng(5)

    def churn():
        keys = []
        for i in range(50):
            center = float(rng.uniform(0, 10_000))
            obj = UncertainObject.uniform(("churn", i), center - 5, center + 5)
            eng.insert(obj)
            keys.append(obj.key)
        for key in keys:
            assert eng.remove(key)

    benchmark.group = "dynamic updates"
    benchmark.name = "50 insert + 50 remove"
    benchmark(churn)


def test_replace_cycle(benchmark):
    """The dead-reckoning primitive: in-place replacement by key."""
    eng = engine()
    rng = np.random.default_rng(7)
    keys = [obj.key for obj in eng.objects[:50]]

    def churn():
        for key in keys:
            center = float(rng.uniform(0, 10_000))
            eng.replace(
                key, UncertainObject.uniform(key, center - 5, center + 5)
            )

    benchmark.group = "dynamic updates"
    benchmark.name = "50 in-place replace"
    benchmark(churn)


def test_query_after_churn(benchmark):
    eng = engine()
    rng = np.random.default_rng(6)
    # Steady-state churn, then measure query latency (should match the
    # static engine's — see fig10 bench).
    for i in range(200):
        center = float(rng.uniform(0, 10_000))
        eng.insert(UncertainObject.uniform(("steady", i), center - 5, center + 5))
    benchmark.group = "dynamic updates"
    benchmark.name = "query after churn"
    benchmark(
        lambda: eng.execute(CPNNQuery(5_000.0, threshold=0.3, tolerance=0.01))
    )
    for i in range(200):
        eng.remove(("steady", i))
