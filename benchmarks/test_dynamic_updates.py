"""Bench: dynamic update throughput (dead-reckoning churn).

Location-based services replace uncertainty regions on every
dead-reckoning report (Section I); this measures insert/remove/requery
cost against the bulk-loaded R-tree without rebuilds."""

import numpy as np
import pytest

from repro.core.engine import UncertainEngine
from repro.core.types import CPNNQuery
from repro.datasets.longbeach import long_beach_surrogate
from repro.uncertainty.objects import UncertainObject

_ENGINE: list[UncertainEngine] = []


def engine() -> UncertainEngine:
    if not _ENGINE:
        _ENGINE.append(UncertainEngine(long_beach_surrogate(n=10_000)))
    return _ENGINE[0]


def test_insert_remove_cycle(benchmark):
    eng = engine()
    rng = np.random.default_rng(5)

    def churn():
        keys = []
        for i in range(50):
            center = float(rng.uniform(0, 10_000))
            obj = UncertainObject.uniform(("churn", i), center - 5, center + 5)
            eng.insert(obj)
            keys.append(obj.key)
        for key in keys:
            assert eng.remove(key)

    benchmark.group = "dynamic updates"
    benchmark.name = "50 insert + 50 remove"
    benchmark(churn)


def test_query_after_churn(benchmark):
    eng = engine()
    rng = np.random.default_rng(6)
    # Steady-state churn, then measure query latency (should match the
    # static engine's — see fig10 bench).
    for i in range(200):
        center = float(rng.uniform(0, 10_000))
        eng.insert(UncertainObject.uniform(("steady", i), center - 5, center + 5))
    benchmark.group = "dynamic updates"
    benchmark.name = "query after churn"
    benchmark(
        lambda: eng.execute(CPNNQuery(5_000.0, threshold=0.3, tolerance=0.01))
    )
    for i in range(200):
        eng.remove(("steady", i))
