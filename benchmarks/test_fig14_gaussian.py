"""Figure 14 bench: the Gaussian-pdf workload (300-bar histograms,
sigma = width/6).

Expected shape (paper): VR's advantage over Basic/Refine is *larger*
than in the uniform case, because exact integration over fine
histograms is expensive while verifier algebra barely changes; at
P = 1 everything is cheap."""

import pytest

from repro.core.types import CPNNQuery

THRESHOLDS = [0.3, 0.7, 1.0]
STRATEGIES = ["basic", "refine", "vr"]


@pytest.mark.parametrize("threshold", THRESHOLDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_gaussian_query_time(
    benchmark, gaussian_engine, bench_queries, strategy, threshold
):
    benchmark.group = f"fig14 P={threshold}"
    benchmark.name = strategy
    benchmark(
        lambda: [
            gaussian_engine.execute(
                CPNNQuery(float(q), threshold=threshold, tolerance=0.01),
                strategy=strategy,
            )
            for q in bench_queries
        ]
    )
