"""Bench: shard-parallel batch throughput vs the single engine.

The acceptance gate of DESIGN.md §12: on the 4,000-object / 200-point
dense C-PNN workload, ``ShardedEngine.execute_batch`` must deliver
**≥ 2× the single-engine batch throughput when ≥ 4 cores are
available** — answers, records, and bounds asserted bit-identical
first, so the speedup can never be bought with approximation.  Both
pipelines are timed *cold* (fresh engines per repetition, best-of-N):
warm repetitions replay memoised result snapshots in both engines and
would measure nothing but the cache.

On machines with fewer than 4 cores the default floor drops to a
sanity bound (the fan-out must not cost more than ~2.5× overhead even
with zero parallelism available); ``SHARDED_SPEEDUP_FLOOR`` overrides
the floor either way, and CI's bench-smoke pins a generous value for
its small shared runners.

The streaming test extends the PR-4 dynamic-equivalence harness to
shards: the same memoised dead-reckoning stream drives a sharded and a
single engine side by side, and every tick's monitoring batch must
match to the bit while the churn migrates objects between shard tiles.
"""

import os
import time

import numpy as np

from repro.core.engine import ShardedEngine, UncertainEngine
from repro.core.types import CPNNQuery
from repro.datasets.longbeach import long_beach_surrogate
from repro.experiments.workloads import StreamingWorkload

#: Workload shape fixed by the acceptance gate.
SHARDED_OBJECTS = 4_000
SHARDED_POINTS = 200

#: Dense candidate sets (~180 per query) keep the per-query work
#: numpy-bound, which is what the thread fan-out parallelises.
MEAN_LENGTH = 400.0

THRESHOLD = 0.35
TOLERANCE = 0.01

N_SHARDS = 4

_STATE: dict = {}


def _floor() -> float:
    env = os.environ.get("SHARDED_SPEEDUP_FLOOR")
    if env is not None:
        return float(env)
    if (os.cpu_count() or 1) >= 4:
        return 2.0
    # Too few cores for parallel speedup: gate only the fan-out
    # overhead (sharded must stay within 2.5x of the single engine).
    return 0.4


def _process_floor() -> float:
    """The process-backend gate: ≥ 1.6× cold-batch throughput when two
    or more real cores are available (the pool is pre-warmed, so spawn
    cost is excluded — the serving regime).  Single-core hosts gate only
    the pipe/pickle overhead; ``SHARDED_SPEEDUP_FLOOR`` overrides either
    way (shared with the thread gate: CI pins one generous value for
    its noisy shared runners)."""
    env = os.environ.get("SHARDED_SPEEDUP_FLOOR")
    if env is not None:
        return float(env)
    if (os.cpu_count() or 1) >= 2:
        return 1.6
    return 0.2


def objects_and_specs():
    if not _STATE:
        objects = long_beach_surrogate(n=SHARDED_OBJECTS, mean_length=MEAN_LENGTH)
        rng = np.random.default_rng(20080407)
        points = rng.uniform(0.0, 10_000.0, size=SHARDED_POINTS)
        specs = [
            CPNNQuery(float(q), threshold=THRESHOLD, tolerance=TOLERANCE)
            for q in points
        ]
        _STATE["objects"] = objects
        _STATE["specs"] = specs
    return _STATE["objects"], _STATE["specs"]


def _assert_identical(got, want):
    assert len(got.results) == len(want.results)
    for a, b in zip(got.results, want.results):
        assert a.answers == b.answers
        assert a.fmin == b.fmin
        assert len(a.records) == len(b.records)
        for x, y in zip(a.records, b.records):
            assert (x.key, x.label, x.lower, x.upper, x.exact) == (
                y.key,
                y.label,
                y.lower,
                y.upper,
                y.exact,
            )


def _cold_single(objects, specs) -> tuple[float, object]:
    engine = UncertainEngine(list(objects))
    tick = time.perf_counter()
    batch = engine.execute_batch(specs)
    return time.perf_counter() - tick, batch


def _cold_sharded(objects, specs) -> tuple[float, object]:
    with ShardedEngine(list(objects), n_shards=N_SHARDS) as engine:
        tick = time.perf_counter()
        batch = engine.execute_batch(specs)
        elapsed = time.perf_counter() - tick
    return elapsed, batch


def _cold_sharded_process(objects, specs) -> tuple[float, object]:
    """Cold batch on the process backend with a pre-warmed pool: the
    engines (and worker replicas) are fresh, so every query runs the
    full pipeline, but spawn+attach happen before the clock starts —
    the steady-state serving regime the backend exists for."""
    with ShardedEngine(
        list(objects), n_shards=N_SHARDS, executor="process"
    ) as engine:
        engine.warm_executor()
        tick = time.perf_counter()
        batch = engine.execute_batch(specs)
        elapsed = time.perf_counter() - tick
    return elapsed, batch


def test_sharded_parallel_speedup_and_identity():
    """The gate: bit-identity always; ≥ 2× throughput with ≥ 4 cores."""
    objects, specs = objects_and_specs()
    floor = _floor()
    single_s, single_batch = _cold_single(objects, specs)
    sharded_s, sharded_batch = _cold_sharded(objects, specs)
    _assert_identical(sharded_batch, single_batch)
    for _ in range(2):
        single_s = min(single_s, _cold_single(objects, specs)[0])
        sharded_s = min(sharded_s, _cold_sharded(objects, specs)[0])
    speedup = single_s / sharded_s
    assert speedup >= floor, (
        f"sharded execute_batch speedup {speedup:.2f}x below floor {floor}x "
        f"({os.cpu_count()} cores; single {single_s * 1e3:.0f} ms, "
        f"sharded {sharded_s * 1e3:.0f} ms; override with "
        f"SHARDED_SPEEDUP_FLOOR)"
    )


def test_process_executor_speedup_and_identity():
    """The process-backend gate: bit-identity always; ≥ 1.6× cold-batch
    throughput with ≥ 2 cores (pool pre-warmed, spawn excluded)."""
    objects, specs = objects_and_specs()
    floor = _process_floor()
    single_s, single_batch = _cold_single(objects, specs)
    process_s, process_batch = _cold_sharded_process(objects, specs)
    _assert_identical(process_batch, single_batch)
    for _ in range(2):
        single_s = min(single_s, _cold_single(objects, specs)[0])
        process_s = min(process_s, _cold_sharded_process(objects, specs)[0])
    speedup = single_s / process_s
    assert speedup >= floor, (
        f"process-executor execute_batch speedup {speedup:.2f}x below "
        f"floor {floor}x ({os.cpu_count()} cores; single "
        f"{single_s * 1e3:.0f} ms, process {process_s * 1e3:.0f} ms; "
        f"override with SHARDED_SPEEDUP_FLOOR)"
    )


def test_sharded_warm_replay_identity():
    """Warm lane caches replay exactly like the single engine's."""
    objects, specs = objects_and_specs()
    single = UncertainEngine(list(objects))
    with ShardedEngine(list(objects), n_shards=N_SHARDS) as sharded:
        cold = single.execute_batch(specs)
        _assert_identical(sharded.execute_batch(specs), cold)
        warm = sharded.execute_batch(specs)
        _assert_identical(warm, single.execute_batch(specs))
        assert warm.result_hits == len(specs)


def test_sharded_streaming_equivalence():
    """The PR-4 streaming harness, extended to shards: every tick of a
    dead-reckoning churn stream answers bit-identically on the sharded
    and the single engine, while reports migrate objects across shard
    tiles (and may trigger rebalances)."""
    workload = StreamingWorkload(
        n_objects=600, churn=0.10, n_queries=12, seed=20080407
    )
    single = workload.make_engine()
    with workload.make_sharded_engine(
        n_shards=N_SHARDS, rebalance_threshold=2.0
    ) as sharded:
        for tick in workload.ticks(6):
            workload.apply(single, tick)
            workload.apply(sharded, tick)
            _assert_identical(
                sharded.execute_batch(list(tick.specs)),
                single.execute_batch(list(tick.specs)),
            )
        occupancy = sharded.stats()["shards"]["occupancy"]
        assert sum(occupancy) == 600


def test_sharded_parallel_accounting_reported():
    """The stats()/explain() speedup observability is populated."""
    objects, specs = objects_and_specs()
    with ShardedEngine(list(objects), n_shards=N_SHARDS) as sharded:
        sharded.execute_batch(specs[:40])
        parallel = sharded.stats()["shards"]["parallel"]
        assert parallel["specs"] == 40
        assert parallel["wall_s"] > 0.0
        assert parallel["lane_s"] > 0.0
        assert parallel["lanes_used"] >= 1
