"""Bench: the dimension-agnostic pipeline on 2-D workloads.

Section IV-A's extension claim in practice: the same engine runs over
disks/segments/rectangles once their distance cdfs are built.  2-D
distance-cdf construction is the dominant initialisation cost here
(geometric integration instead of a histogram fold)."""

import numpy as np
import pytest

from repro.core.engine import UncertainEngine
from repro.core.types import CPNNQuery
from repro.datasets.planar import planar_disks, planar_mixed_objects

_ENGINES = {}


def engine_for(kind: str) -> UncertainEngine:
    if kind not in _ENGINES:
        rng = np.random.default_rng(11)
        if kind == "disks":
            objects = planar_disks(2_000, rng=rng)
        else:
            objects = planar_mixed_objects(2_000, rng=rng)
        _ENGINES[kind] = UncertainEngine(objects)
    return _ENGINES[kind]


def queries():
    rng = np.random.default_rng(13)
    return [tuple(q) for q in rng.uniform(0, 1000, (3, 2))]


@pytest.mark.parametrize("kind", ["disks", "mixed"])
@pytest.mark.parametrize("strategy", ["basic", "vr"])
def test_2d_query(benchmark, kind, strategy):
    engine = engine_for(kind)
    pts = queries()
    benchmark.group = f"2d pipeline ({kind})"
    benchmark.name = strategy
    benchmark(
        lambda: [
            engine.execute(
                CPNNQuery(tuple(q), threshold=0.3, tolerance=0.01), strategy=strategy
            )
            for q in pts
        ]
    )


def test_2d_filtering(benchmark):
    engine = engine_for("disks")
    pts = queries()
    benchmark.group = "2d pipeline (disks)"
    benchmark.name = "filtering-only"
    benchmark(lambda: [engine._filter(q) for q in pts])
