"""Bench: moving queries — safe-region monitoring vs re-execute-all.

Continuous monitoring (Section VII outlook; DESIGN.md §17) keeps a
fleet of registered queries current over a drifting object population.
Before the continuous tier, every tick re-entered the query pipeline
for all Q registered specs; only the C-PNN family could shortcut via
the engine's memoised-result replay, while k-NN and range queries paid
the full verifier cascade each time.  This module gates the tier on a
mixed 64-query monitoring fleet (C-PNN + C-k-NN + C-range, one third
each) over 1 200 moving objects at low dead-reckoning churn, with
three acceptance criteria:

* **bit-identity** — every tick, every handle's snapshot (answers,
  fmin, full records) equals the re-execute-all baseline's result for
  the same spec over the same objects;
* **bounded escapes** — at low motion, ≤ 10% of the fleet escapes its
  safe region on any measured tick (the sublinearity premise: most
  certificates survive most mutations);
* **≥ 3× steady-state tick throughput** over the re-execute-all
  baseline (``MOVING_QUERIES_SPEEDUP_FLOOR`` overrides the floor; CI
  uses a generous value because shared runners make wall-clock ratios
  noisy).  The measured margin is ~20–60× locally: the dominance index
  certifies most of the fleet untouched per mutation, so a tick pays
  O(affected) re-executions instead of O(Q).
"""

import os
import time

import numpy as np

from repro.continuous import ContinuousMonitor
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.experiments.workloads import StreamingWorkload

#: Monitoring-fleet shape (acceptance: Q = 64 at low motion/churn).
MOVING_OBJECTS = 1_200
MOVING_CHURN = 0.002
MOVING_QUERIES = 64
MOVING_HALFWIDTH = 1.0
MOVING_DRIFT = 2.0

#: Warm-up ticks before the measured window (certificate steady state).
WARMUP_TICKS = 2
MEASURED_TICKS = 5

#: Acceptance bound on per-tick safe-region escapes.
ESCAPE_CEILING = 0.10

_STATE: dict = {}


def mixed_spec_factory():
    """One third each of the three query families, round-robin over
    the workload's monitoring points — k-NN and range have no
    engine-tier replay, so the fleet exercises both the memoised and
    the full-cascade baseline paths."""
    counter = {"i": 0}

    def factory(q: float):
        index = counter["i"]
        counter["i"] += 1
        family = index % 3
        if family == 0:
            return CPNNQuery(q, threshold=0.3, tolerance=0.02)
        if family == 1:
            return CKNNQuery(q, k=4, threshold=0.3)
        return CRangeQuery(q, radius=40.0, threshold=0.3)

    return factory


def moving_state() -> dict:
    """Workload + pre-materialised ticks, shared across the gates."""
    if not _STATE:
        workload = StreamingWorkload(
            n_objects=MOVING_OBJECTS,
            churn=MOVING_CHURN,
            n_queries=MOVING_QUERIES,
            halfwidth=MOVING_HALFWIDTH,
            drift_sigma=MOVING_DRIFT,
            spec_factory=mixed_spec_factory(),
        )
        ticks = list(workload.ticks(WARMUP_TICKS + MEASURED_TICKS))
        _STATE["workload"] = workload
        _STATE["warmup"] = ticks[:WARMUP_TICKS]
        _STATE["measured"] = ticks[WARMUP_TICKS:]
    return _STATE


def run_baseline(engine, ticks) -> list:
    """Re-execute-all: apply each tick's reports, then push the whole
    fleet back through ``execute_batch`` (the pre-continuous path)."""
    results = []
    for tick in ticks:
        StreamingWorkload.apply(engine, tick)
        results.append(engine.execute_batch(list(tick.specs)))
    return results


def run_monitored(monitor: ContinuousMonitor, ticks) -> list:
    """Continuous tier: route the same reports through the monitor and
    tick once per round."""
    reports = []
    for tick in ticks:
        for key, obj in tick.replacements:
            monitor.replace(key, obj)
        reports.append(monitor.tick())
    return reports


def _assert_snapshots_identical(handles, batch) -> None:
    assert len(handles) == len(batch.results)
    for handle, want in zip(handles, batch.results):
        got = handle.snapshot()
        assert got.answers == want.answers
        assert (got.fmin == want.fmin) or (
            np.isnan(got.fmin) and np.isnan(want.fmin)
        )
        assert len(got.records) == len(want.records)
        for x, y in zip(got.records, want.records):
            assert (x.key, x.label, x.lower, x.upper, x.exact) == (
                y.key,
                y.label,
                y.lower,
                y.upper,
                y.exact,
            )


def test_moving_queries_identical_every_tick():
    """Acceptance (a): every tick, every handle snapshot is bit-identical
    to full re-execution — a transiently wrong replay cannot hide."""
    state = moving_state()
    workload = state["workload"]
    baseline = workload.make_engine()
    monitor = ContinuousMonitor(workload.make_engine())
    handles = monitor.register_many(list(workload.specs))
    for tick in state["warmup"] + state["measured"]:
        (batch,) = run_baseline(baseline, [tick])
        run_monitored(monitor, [tick])
        _assert_snapshots_identical(handles, batch)


def test_moving_queries_speedup_over_reexecute_all():
    """Acceptance (b, c): ≥ 3× steady-state tick throughput over the
    re-execute-all baseline with ≤ 10% of the fleet escaping its safe
    region on any measured tick.  ``MOVING_QUERIES_SPEEDUP_FLOOR``
    overrides the floor (generous in CI)."""
    state = moving_state()
    workload = state["workload"]
    baseline = workload.make_engine()
    monitor = ContinuousMonitor(workload.make_engine())
    monitor.register_many(list(workload.specs))
    run_baseline(baseline, state["warmup"])
    run_monitored(monitor, state["warmup"])

    tick0 = time.perf_counter()
    run_baseline(baseline, state["measured"])
    baseline_s = time.perf_counter() - tick0
    tick0 = time.perf_counter()
    reports = run_monitored(monitor, state["measured"])
    monitored_s = time.perf_counter() - tick0

    escape = max(report.escape_rate for report in reports)
    assert escape <= ESCAPE_CEILING, (
        f"low-motion fleet must stay within its safe regions, got "
        f"{escape:.1%} escapes on a measured tick"
    )
    assert sum(report.replayed for report in reports) > 0

    floor = float(os.environ.get("MOVING_QUERIES_SPEEDUP_FLOOR", "3.0"))
    speedup = baseline_s / monitored_s
    assert speedup >= floor, (
        f"monitored ticks must be ≥{floor:.1f}x the re-execute-all "
        f"baseline at steady state, got {speedup:.2f}x (monitored "
        f"{monitored_s * 1e3:.1f} ms, baseline {baseline_s * 1e3:.1f} ms "
        f"over {MEASURED_TICKS} ticks)"
    )


def test_moving_tick_benchmark(benchmark):
    """pytest-benchmark view of one steady-state monitored tick."""
    state = moving_state()
    workload = state["workload"]
    monitor = ContinuousMonitor(workload.make_engine())
    monitor.register_many(list(workload.specs))
    run_monitored(monitor, state["warmup"] + state["measured"])
    ticks = state["measured"]
    index = [0]

    def one_tick():
        tick = ticks[index[0] % len(ticks)]
        index[0] += 1
        for key, obj in tick.replacements:
            monitor.replace(key, obj)
        return monitor.tick()

    benchmark.group = "moving queries"
    benchmark.name = (
        f"monitored tick ({MOVING_OBJECTS} obj, {MOVING_QUERIES} specs, "
        f"{MOVING_CHURN:.1%} churn)"
    )
    benchmark(one_tick)
