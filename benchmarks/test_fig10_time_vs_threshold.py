"""Figure 10 bench: end-to-end query time for Basic / Refine / VR
across thresholds on the uniform-pdf workload.

Expected shape (paper): VR < Refine ≤ Basic at every threshold; the
VR advantage widens with P as upper-bound verifiers fail objects
without integration."""

import pytest

from repro.core.types import CPNNQuery

THRESHOLDS = [0.1, 0.3, 0.7]
STRATEGIES = ["basic", "refine", "vr"]


@pytest.mark.parametrize("threshold", THRESHOLDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_query_time(benchmark, uniform_engine, bench_queries, strategy, threshold):
    benchmark.group = f"fig10 P={threshold}"
    benchmark.name = strategy
    benchmark(
        lambda: [
            uniform_engine.execute(
                CPNNQuery(float(q), threshold=threshold, tolerance=0.01),
                strategy=strategy,
            )
            for q in bench_queries
        ]
    )
