"""Bench: batch query throughput vs a sequential query() loop.

The workload the batch subsystem targets: many query points (moving
clients, repeated probes) against one object set.  Measures the
steady-state throughput of ``query_batch`` against the equivalent
sequential loop, checks the ≥ 2× acceptance bar, and verifies that
batch and sequential answer sets agree exactly at tolerance 0.
"""

import os
import time

import numpy as np
import pytest

from repro.core.engine import CPNNEngine
from repro.datasets.longbeach import long_beach_surrogate

#: Objects in the benchmark engine (acceptance floor: ≥ 500).
BATCH_OBJECTS = 2_000

#: Query points per batch (acceptance floor: ≥ 100).
BATCH_POINTS = 100

THRESHOLD = 0.3
TOLERANCE = 0.0

_STATE: dict = {}


def engine_and_points() -> tuple[CPNNEngine, list[float]]:
    if not _STATE:
        engine = CPNNEngine(long_beach_surrogate(n=BATCH_OBJECTS))
        rng = np.random.default_rng(20080407)
        points = [float(q) for q in rng.uniform(0.0, 10_000.0, size=BATCH_POINTS)]
        _STATE["engine"] = engine
        _STATE["points"] = points
    return _STATE["engine"], _STATE["points"]


def run_sequential(engine: CPNNEngine, points: list[float]):
    return [
        engine.query(q, threshold=THRESHOLD, tolerance=TOLERANCE) for q in points
    ]


def test_sequential_loop(benchmark):
    engine, points = engine_and_points()
    benchmark.group = "batch throughput"
    benchmark.name = f"sequential query() x {BATCH_POINTS}"
    benchmark(run_sequential, engine, points)


def test_query_batch(benchmark):
    engine, points = engine_and_points()
    benchmark.group = "batch throughput"
    benchmark.name = f"query_batch({BATCH_POINTS} points)"
    benchmark(
        engine.query_batch, points, threshold=THRESHOLD, tolerance=TOLERANCE
    )


def test_query_batch_repeated_probes(benchmark):
    """Moving-client trace: every point probed is one of 20 hot spots."""
    engine, points = engine_and_points()
    rng = np.random.default_rng(7)
    trace = [points[i] for i in rng.integers(0, 20, size=BATCH_POINTS)]
    benchmark.group = "batch throughput"
    benchmark.name = f"query_batch, {BATCH_POINTS} probes of 20 hot spots"
    benchmark(
        engine.query_batch, trace, threshold=THRESHOLD, tolerance=TOLERANCE
    )


def test_batch_speedup_and_equivalence():
    """Acceptance: ≥ 2× over the sequential loop, identical answers.

    Measured at steady state (warm caches, best-of-3): the LRU
    distribution/table caches are part of the batch subsystem's design
    for repeated-probe workloads, while ``query()`` deliberately has no
    caches.  The steady-state margin is ~3.5×, leaving headroom for
    noisy CI runners; a cold first batch is still faster than the
    loop, just by less (~1.5–2×).
    """
    engine, points = engine_and_points()

    sequential = run_sequential(engine, points)
    batch = engine.query_batch(points, threshold=THRESHOLD, tolerance=TOLERANCE)
    for reference, result in zip(sequential, batch):
        assert set(result.answers) == set(reference.answers)

    if os.environ.get("CI"):
        pytest.skip(
            "wall-clock speedup assertion is unreliable on shared CI "
            "runners; answer equality above still ran"
        )

    def best_of(runs: int, fn) -> float:
        best = float("inf")
        for _ in range(runs):
            tick = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - tick)
        return best

    seq_time = best_of(3, lambda: run_sequential(engine, points))
    batch_time = best_of(
        3,
        lambda: engine.query_batch(
            points, threshold=THRESHOLD, tolerance=TOLERANCE
        ),
    )
    speedup = seq_time / batch_time
    assert speedup >= 2.0, (
        f"query_batch must be ≥2x a sequential loop, got {speedup:.2f}x "
        f"(sequential {seq_time * 1e3:.1f} ms, batch {batch_time * 1e3:.1f} ms)"
    )


def test_batch_answers_stable_across_cache_states():
    """Cold and warm batches return identical answers."""
    engine = CPNNEngine(long_beach_surrogate(n=600))
    rng = np.random.default_rng(11)
    points = [float(q) for q in rng.uniform(0.0, 10_000.0, size=50)]
    cold = engine.query_batch(points, threshold=THRESHOLD, tolerance=TOLERANCE)
    warm = engine.query_batch(points, threshold=THRESHOLD, tolerance=TOLERANCE)
    assert cold.answers == warm.answers
    assert warm.table_hits == len(points)
