"""Bench: batch façade throughput vs sequential / pre-façade loops.

The workload the batch subsystem targets: many query points (moving
clients, repeated probes) against one object set, now issued through
``execute_batch`` for all three spec families:

* **C-PNN** — ``execute_batch`` vs a sequential ``execute`` loop
  (≥ 2× acceptance bar, answer sets asserted identical);
* **k-NN** — ``execute_batch`` vs the pre-façade scalar path (a
  ``CKNNEngine.query`` loop, which builds every object's distance
  distribution and integrates against all objects).  The routed path's
  MBR ``f_min^k`` filtering + columnar kernels must win by ≥ 2×
  (``KNN_BATCH_SPEEDUP_FLOOR`` overrides the floor; answers and
  records are asserted bit-identical first);
* **range** — ``execute_batch`` vs the pre-façade
  ``constrained_range_query`` loop (identity asserted; speedup
  reported by ``record_bench.py``, no gate — both paths are dominated
  by per-object record construction).
"""

import os
import time
import warnings

import numpy as np
import pytest

from repro.core.engine import UncertainEngine
from repro.core.knn import CKNNEngine
from repro.core.range_query import constrained_range_query
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.datasets.longbeach import long_beach_surrogate

# The pre-façade baselines below are exercised on purpose: they are the
# reference scalar paths the routed engine must match bit for bit.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: Objects in the benchmark engine (acceptance floor: ≥ 500).
BATCH_OBJECTS = 2_000

#: Query points per batch (acceptance floor: ≥ 100).
BATCH_POINTS = 100

#: k-NN spec batch size, and how many of those points the (much
#: slower) scalar baseline is timed on — the speedup compares
#: per-query times, so the baseline sample can stay small.
KNN_POINTS = 40
KNN_LEGACY_POINTS = 4
KNN_K = 3
KNN_THRESHOLD = 0.3

RANGE_POINTS = 40
RANGE_RADIUS = 40.0
RANGE_THRESHOLD = 0.5

THRESHOLD = 0.3
TOLERANCE = 0.0

_STATE: dict = {}


def engine_and_points() -> tuple[UncertainEngine, list[float]]:
    if not _STATE:
        engine = UncertainEngine(long_beach_surrogate(n=BATCH_OBJECTS))
        rng = np.random.default_rng(20080407)
        points = [float(q) for q in rng.uniform(0.0, 10_000.0, size=BATCH_POINTS)]
        _STATE["engine"] = engine
        _STATE["points"] = points
    return _STATE["engine"], _STATE["points"]


def pnn_specs(points) -> list[CPNNQuery]:
    return [
        CPNNQuery(q, threshold=THRESHOLD, tolerance=TOLERANCE) for q in points
    ]


def knn_specs(points) -> list[CKNNQuery]:
    return [
        CKNNQuery(q, threshold=KNN_THRESHOLD, k=KNN_K)
        for q in points[:KNN_POINTS]
    ]


def range_specs(points) -> list[CRangeQuery]:
    return [
        CRangeQuery(q, threshold=RANGE_THRESHOLD, radius=RANGE_RADIUS)
        for q in points[:RANGE_POINTS]
    ]


def run_sequential(engine: UncertainEngine, points: list[float]):
    return [engine.execute(spec) for spec in pnn_specs(points)]


def run_knn_legacy(engine: UncertainEngine, points: list[float]):
    """The pre-façade scalar k-NN path (no filtering, no cache)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = CKNNEngine(engine.objects, k=KNN_K)
    return [
        legacy.query(q, threshold=KNN_THRESHOLD)
        for q in points[:KNN_LEGACY_POINTS]
    ]


def run_range_legacy(engine: UncertainEngine, points: list[float]):
    """The pre-façade scalar range path."""
    return [
        constrained_range_query(
            engine.objects, q, RANGE_RADIUS, RANGE_THRESHOLD
        )
        for q in points[:RANGE_POINTS]
    ]


def _records_equal(a, b) -> bool:
    return len(a) == len(b) and all(
        (x.key, x.label, x.lower, x.upper, x.exact)
        == (y.key, y.label, y.lower, y.upper, y.exact)
        for x, y in zip(a, b)
    )


def _best_of(runs: int, fn) -> float:
    best = float("inf")
    for _ in range(runs):
        tick = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tick)
    return best


def test_sequential_loop(benchmark):
    engine, points = engine_and_points()
    benchmark.group = "batch throughput"
    benchmark.name = f"sequential execute() x {BATCH_POINTS}"
    benchmark(run_sequential, engine, points)


def test_execute_batch(benchmark):
    engine, points = engine_and_points()
    benchmark.group = "batch throughput"
    benchmark.name = f"execute_batch({BATCH_POINTS} C-PNN specs)"
    benchmark(engine.execute_batch, pnn_specs(points))


def test_execute_batch_repeated_probes(benchmark):
    """Moving-client trace: every point probed is one of 20 hot spots."""
    engine, points = engine_and_points()
    rng = np.random.default_rng(7)
    trace = [points[i] for i in rng.integers(0, 20, size=BATCH_POINTS)]
    benchmark.group = "batch throughput"
    benchmark.name = f"execute_batch, {BATCH_POINTS} probes of 20 hot spots"
    benchmark(engine.execute_batch, pnn_specs(trace))


def test_execute_batch_knn(benchmark):
    engine, points = engine_and_points()
    benchmark.group = "batch throughput"
    benchmark.name = f"execute_batch({KNN_POINTS} k-NN specs, k={KNN_K})"
    benchmark(engine.execute_batch, knn_specs(points))


def test_execute_batch_range(benchmark):
    engine, points = engine_and_points()
    benchmark.group = "batch throughput"
    benchmark.name = f"execute_batch({RANGE_POINTS} range specs)"
    benchmark(engine.execute_batch, range_specs(points))


def test_batch_speedup_and_equivalence():
    """Acceptance: ≥ 2× over the sequential loop, identical answers.

    Measured at steady state (warm caches, best-of-3): the LRU
    distribution/table caches are part of the batch subsystem's design
    for repeated-probe workloads, while the single-spec ``execute``
    path deliberately has no caches.  The steady-state margin is
    ~3.5×, leaving headroom for noisy CI runners; a cold first batch
    is still faster than the loop, just by less (~1.5–2×).
    """
    engine, points = engine_and_points()

    sequential = run_sequential(engine, points)
    batch = engine.execute_batch(pnn_specs(points))
    for reference, result in zip(sequential, batch):
        assert set(result.answers) == set(reference.answers)

    if os.environ.get("CI"):
        pytest.skip(
            "wall-clock speedup assertion is unreliable on shared CI "
            "runners; answer equality above still ran"
        )

    seq_time = _best_of(3, lambda: run_sequential(engine, points))
    batch_time = _best_of(3, lambda: engine.execute_batch(pnn_specs(points)))
    speedup = seq_time / batch_time
    assert speedup >= 2.0, (
        f"execute_batch must be ≥2x a sequential loop, got {speedup:.2f}x "
        f"(sequential {seq_time * 1e3:.1f} ms, batch {batch_time * 1e3:.1f} ms)"
    )


def test_knn_batch_speedup_and_equivalence():
    """Acceptance: k-NN ``execute_batch`` ≥ 2× the pre-façade scalar loop.

    The scalar :class:`CKNNEngine` path builds every object's distance
    distribution per query and integrates undecided candidates against
    all objects; the routed path prunes with the MBR ``f_min^k`` rule
    first and serves bounds from columnar kernels, so the real margin
    is orders of magnitude (the baseline is therefore timed on a small
    point sample and compared per query).  Records are asserted
    **bit-identical** before any timing.  ``KNN_BATCH_SPEEDUP_FLOOR``
    overrides the 2× floor (CI uses a generous value; shared runners
    make wall-clock ratios noisy).
    """
    engine, points = engine_and_points()
    specs = knn_specs(points)

    legacy = run_knn_legacy(engine, points)
    batch = engine.execute_batch(specs)
    for (legacy_answers, legacy_records), result in zip(legacy, batch):
        assert result.answers == legacy_answers
        assert _records_equal(result.records, legacy_records)

    floor = float(os.environ.get("KNN_BATCH_SPEEDUP_FLOOR", "2.0"))
    legacy_per_query = _best_of(
        1, lambda: run_knn_legacy(engine, points)
    ) / KNN_LEGACY_POINTS
    batch_per_query = _best_of(
        3, lambda: engine.execute_batch(specs)
    ) / len(specs)
    speedup = legacy_per_query / batch_per_query
    assert speedup >= floor, (
        f"k-NN execute_batch must be ≥{floor:.1f}x the scalar loop per "
        f"query, got {speedup:.2f}x (scalar {legacy_per_query * 1e3:.1f} "
        f"ms/q, batch {batch_per_query * 1e3:.1f} ms/q)"
    )


def test_range_batch_equivalence():
    """Range ``execute_batch`` is bit-identical to the scalar loop."""
    engine, points = engine_and_points()
    batch = engine.execute_batch(range_specs(points))
    for (legacy_answers, legacy_records), result in zip(
        run_range_legacy(engine, points), batch
    ):
        assert result.answers == legacy_answers
        assert _records_equal(result.records, legacy_records)


def test_batch_answers_stable_across_cache_states():
    """Cold and warm batches return identical answers."""
    engine = UncertainEngine(long_beach_surrogate(n=600))
    rng = np.random.default_rng(11)
    points = [float(q) for q in rng.uniform(0.0, 10_000.0, size=50)]
    cold = engine.execute_batch(pnn_specs(points))
    warm = engine.execute_batch(pnn_specs(points))
    assert cold.answers == warm.answers
    assert warm.table_hits == len(points)
