"""Bench: paged (mmap) pack kernels vs the resident pack.

The out-of-core design trades kernel locality for bounded memory: a
:class:`~repro.uncertainty.columnar.PagedDistributionPack` streams its
flat columns through a small window pool instead of holding them
resident.  This bench builds one corpus, serves it both ways, and

* **gates identity** — the paged cdf/ppf sweeps must match the
  resident pack bit for bit, with a pool small enough that the sweep
  demonstrably thrashes (faults exceed the pool capacity);
* **gates deterministic accounting** — the same sweep replayed on a
  dropped cache must fault and evict *exactly* the same number of
  times (the pool is LRU over a deterministic access sequence; a
  nondeterministic count means the pool is broken);
* **records throughput** — the paged-over-resident slowdown goes into
  the BENCH snapshot for trajectory tracking, not into a gate:
  wall-clock ratios of page-granular I/O on shared runners are noise.
"""

import numpy as np

from repro.uncertainty.columnar import DistributionPack, PagedDistributionPack
from repro.uncertainty.histogram import Histogram

CORPUS_ROWS = 4_096
CORPUS_BINS = 48
PAGE_BYTES = 1 << 16
POOL_PAGES = 4
SWEEP_POINTS = 64

_STATE: dict = {}


def resident_pack() -> DistributionPack:
    if "pack" not in _STATE:
        rng = np.random.default_rng(20080613)
        histograms = []
        for lo in rng.uniform(0.0, 60.0, CORPUS_ROWS):
            edges = lo + np.concatenate(
                [[0.0], np.cumsum(rng.uniform(1e-3, 1.5, CORPUS_BINS))]
            )
            mass = rng.uniform(1e-6, 1.0, CORPUS_BINS)
            histograms.append(Histogram(edges, mass / mass.sum()))
        _STATE["pack"] = DistributionPack(histograms)
        _STATE["xs"] = np.sort(rng.uniform(-10.0, 160.0, SWEEP_POINTS))
    return _STATE["pack"]


def paged_pack() -> PagedDistributionPack:
    """A paged view of the corpus over a deliberately tiny pool."""
    store = resident_pack().to_store(
        "mmap", page_bytes=PAGE_BYTES, pool_pages=POOL_PAGES
    )
    return DistributionPack.from_store(store)


def test_paged_sweeps_bit_identical_and_thrash_counted():
    resident = resident_pack()
    paged = paged_pack()
    assert isinstance(paged, PagedDistributionPack)
    store = paged.store
    try:
        xs = _STATE["xs"]
        store.reset_stats()
        assert np.array_equal(paged.cdf_many(xs), resident.cdf_many(xs))
        stats = store.stats()
        # The corpus spans far more pages than the pool holds, so a
        # full sweep must actually page: this gate fails if the pool
        # silently grows (or the store quietly went resident).
        assert stats["page_faults"] > POOL_PAGES, stats
        assert stats["evictions"] > 0, stats
        assert stats["resident_pages"] <= POOL_PAGES, stats

        rng = np.random.default_rng(7)
        u = rng.uniform(0.0, 1.0, (CORPUS_ROWS, 8)) * resident.totals[:, None]
        assert np.array_equal(paged.ppf_many(u), resident.ppf_many(u))
    finally:
        store.close()


def test_fault_accounting_is_deterministic():
    """Same access sequence, same cold pool → identical counters."""
    paged = paged_pack()
    store = paged.store
    try:
        xs = _STATE["xs"]

        def sweep_counts() -> tuple:
            store.drop_cache()
            store.reset_stats()
            paged.cdf_many(xs)
            stats = store.stats()
            return (
                stats["logical_reads"],
                stats["page_faults"],
                stats["evictions"],
            )

        first = sweep_counts()
        second = sweep_counts()
        assert first == second, (first, second)
        # Cold pool: every fault past capacity evicts exactly once.
        reads, faults, evictions = first
        assert evictions == faults - POOL_PAGES, first
        assert reads >= faults > POOL_PAGES, first
    finally:
        store.close()


def measure(repeats: int = 3) -> dict:
    """Best-of-``repeats`` full-corpus sweep, resident vs paged (cold
    pool each repetition).  Recorded, not gated."""
    import time

    resident = resident_pack()
    paged = paged_pack()
    store = paged.store
    try:
        xs = _STATE["xs"]

        def timed(fn) -> float:
            tick = time.perf_counter()
            fn()
            return time.perf_counter() - tick

        resident_s = min(
            timed(lambda: resident.cdf_many(xs)) for _ in range(repeats)
        )

        def cold_paged():
            store.drop_cache()
            paged.cdf_many(xs)

        paged_s = min(timed(cold_paged) for _ in range(repeats))
        store.drop_cache()
        store.reset_stats()
        paged.cdf_many(xs)
        stats = store.stats()
        return {
            "rows": CORPUS_ROWS,
            "bins": CORPUS_BINS,
            "sweep_points": SWEEP_POINTS,
            "corpus_bytes": stats["nbytes"],
            "page_bytes": PAGE_BYTES,
            "pool_pages": POOL_PAGES,
            "resident_sweep_s": resident_s,
            "paged_cold_sweep_s": paged_s,
            "paged_slowdown": paged_s / resident_s,
            "page_faults": stats["page_faults"],
            "evictions": stats["evictions"],
            "hit_rate": stats["hit_rate"],
        }
    finally:
        store.close()


def test_measure_smoke():
    """The snapshot entry is computable and shaped (identity is gated
    above; timing here is recorded only)."""
    snapshot = measure(repeats=1)
    assert snapshot["corpus_bytes"] > PAGE_BYTES * POOL_PAGES
    assert snapshot["paged_slowdown"] > 0.0
