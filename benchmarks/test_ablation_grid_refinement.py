"""Ablation: subregion grid refinement (our extension).

Splitting every subregion g-fold tightens the verifier bounds on
average (the U-SR upper bound converges to the exact probability as
g → ∞, though not monotonically step-by-step) at ~g× verification
cost.  The bench measures the cost side; the companion assertions
check the net tightening materialises."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, UncertainEngine
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery
from repro.core.verifiers import LowerSubregionVerifier, UpperSubregionVerifier
from repro.datasets.longbeach import long_beach_surrogate

GRIDS = [1, 2, 4]

_ENGINES = {}


def engine_for(grid: int) -> UncertainEngine:
    if grid not in _ENGINES:
        objects = long_beach_surrogate(n=8_000)
        _ENGINES[grid] = UncertainEngine(objects, EngineConfig(grid_refinement=grid))
    return _ENGINES[grid]


@pytest.mark.parametrize("grid", GRIDS)
def test_vr_query_time_vs_grid(benchmark, bench_queries, grid):
    engine = engine_for(grid)
    benchmark.group = "ablation grid-refinement (VR time)"
    benchmark.name = f"g={grid}"
    benchmark(
        lambda: [
            engine.execute(
                CPNNQuery(float(q), threshold=0.3, tolerance=0.01), strategy="vr"
            )
            for q in bench_queries
        ]
    )


def test_bounds_tighten_with_grid(bench_queries, benchmark):
    """Average bound width shrinks (net, averaged over queries) as g
    grows — and the bounds remain sound at every refinement level."""
    engine = engine_for(1)

    def width_for(dists, grid: int) -> float:
        table = SubregionTable(dists, grid_refinement=grid)
        lower = LowerSubregionVerifier().compute(table).lower
        upper = UpperSubregionVerifier().compute(table).upper
        return float(np.mean(upper - lower))

    cases = []
    for q in bench_queries:
        filtered = engine._filter(float(q))
        cases.append([o.distance_distribution(float(q)) for o in filtered.candidates])

    coarse = np.mean([width_for(dists, 1) for dists in cases])
    fine = np.mean([width_for(dists, 8) for dists in cases])
    benchmark.group = "ablation grid-refinement (tightness)"
    benchmark(lambda: width_for(cases[0], 4))
    assert fine <= coarse + 1e-9
