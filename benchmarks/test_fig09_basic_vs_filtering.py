"""Figure 9 bench: filtering cost vs Basic evaluation cost as the
table size grows.  The paper's observation: Basic's share of the total
time dominates beyond |T| ≈ 5000."""

import numpy as np
import pytest

from repro.core.engine import UncertainEngine
from repro.core.types import CPNNQuery
from repro.datasets.longbeach import long_beach_surrogate
from repro.datasets.queries import random_query_points

SIZES = [2_000, 8_000, 24_000]

_ENGINES: dict[int, UncertainEngine] = {}


def engine_for(n: int) -> UncertainEngine:
    if n not in _ENGINES:
        _ENGINES[n] = UncertainEngine(long_beach_surrogate(n=n))
    return _ENGINES[n]


def queries():
    rng = np.random.default_rng(20080407)
    return random_query_points(3, rng=rng)


@pytest.mark.parametrize("size", SIZES)
def test_filtering_phase(benchmark, size):
    engine = engine_for(size)
    pts = queries()
    benchmark.group = f"fig9 |T|={size}"
    benchmark(lambda: [engine._filter(q) for q in pts])


@pytest.mark.parametrize("size", SIZES)
def test_basic_evaluation(benchmark, size):
    engine = engine_for(size)
    pts = queries()
    benchmark.group = f"fig9 |T|={size}"
    benchmark(
        lambda: [
            engine.execute(
                CPNNQuery(float(q), threshold=0.3, tolerance=0.0), strategy="basic"
            )
            for q in pts
        ]
    )
