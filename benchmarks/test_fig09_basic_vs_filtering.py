"""Figure 9 bench: filtering cost vs Basic evaluation cost as the
table size grows.  The paper's observation: Basic's share of the total
time dominates beyond |T| ≈ 5000."""

import pytest

from repro.core.engine import CPNNEngine
from repro.datasets.longbeach import long_beach_surrogate
from repro.datasets.queries import random_query_points

import numpy as np

SIZES = [2_000, 8_000, 24_000]

_ENGINES: dict[int, CPNNEngine] = {}


def engine_for(n: int) -> CPNNEngine:
    if n not in _ENGINES:
        _ENGINES[n] = CPNNEngine(long_beach_surrogate(n=n))
    return _ENGINES[n]


def queries():
    rng = np.random.default_rng(20080407)
    return random_query_points(3, rng=rng)


@pytest.mark.parametrize("size", SIZES)
def test_filtering_phase(benchmark, size):
    engine = engine_for(size)
    pts = queries()
    benchmark.group = f"fig9 |T|={size}"
    benchmark(lambda: [engine._filter(q) for q in pts])


@pytest.mark.parametrize("size", SIZES)
def test_basic_evaluation(benchmark, size):
    engine = engine_for(size)
    pts = queries()
    benchmark.group = f"fig9 |T|={size}"
    benchmark(
        lambda: [
            engine.query(q, threshold=0.3, tolerance=0.0, strategy="basic")
            for q in pts
        ]
    )
