"""Record a performance-trajectory snapshot: ``BENCH_columnar.json``.

Runs the columnar phase-breakdown benchmark (scalar PR-1 replica vs
columnar pipeline, per-phase timings) and the batch-throughput
benchmark (sequential ``query()`` loop vs ``query_batch``), then
writes one JSON document with the raw seconds, the relative speedups,
and the workload shape.  Future PRs re-run this script and diff the
committed snapshot to catch performance regressions without relying on
absolute wall-clock numbers from someone else's machine.

Usage::

    python benchmarks/record_bench.py [--output BENCH_columnar.json]
                                      [--repeats 3]

Wall-clock numbers are machine-dependent; the speedup ratios are the
comparable quantities.  CI uploads the JSON as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    # Running outside pytest (which supplies pythonpath=src) against a
    # non-installed checkout: use the src layout directly.
    sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

import test_batch_throughput as throughput_bench  # noqa: E402
import test_columnar_speedup as columnar_bench  # noqa: E402


def measure_batch_throughput(repeats: int) -> dict:
    """Best-of-``repeats`` sequential-loop vs query_batch timings."""
    engine, points = throughput_bench.engine_and_points()
    threshold = throughput_bench.THRESHOLD
    tolerance = throughput_bench.TOLERANCE

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            tick = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - tick)
        return best

    sequential = best_of(
        lambda: throughput_bench.run_sequential(engine, points)
    )
    batch = best_of(
        lambda: engine.query_batch(
            points, threshold=threshold, tolerance=tolerance
        )
    )
    return {
        "objects": throughput_bench.BATCH_OBJECTS,
        "points": throughput_bench.BATCH_POINTS,
        "threshold": threshold,
        "tolerance": tolerance,
        "sequential_s": sequential,
        "query_batch_s": batch,
        "speedup": sequential / batch,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_columnar.json",
        help="where to write the snapshot (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions per pipeline; best run is recorded",
    )
    args = parser.parse_args(argv)

    _, _, distributions = columnar_bench.workload()
    sizes = [len(d) for d in distributions]
    snapshot = {
        "bench": "columnar-kernels",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workload": {
            "objects": columnar_bench.BENCH_OBJECTS,
            "points": columnar_bench.BENCH_POINTS,
            "mean_interval_length": columnar_bench.MEAN_LENGTH,
            "avg_candidates": float(np.mean(sizes)),
            "max_candidates": int(max(sizes)),
            "strategy": "vr",
        },
        "phase_breakdown": {
            "primary": columnar_bench.measure(
                columnar_bench.PRIMARY, repeats=args.repeats
            ),
            "refinement_stress": columnar_bench.measure(
                columnar_bench.REFINEMENT_STRESS, repeats=args.repeats
            ),
        },
        "batch_throughput": measure_batch_throughput(args.repeats),
    }
    with open(args.output, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=False)
        handle.write("\n")
    primary = snapshot["phase_breakdown"]["primary"]["speedup"]
    print(
        f"wrote {args.output}: primary combined speedup "
        f"{primary['combined']:.2f}x "
        f"(init {primary['initialization']:.2f}x), batch throughput "
        f"{snapshot['batch_throughput']['speedup']:.2f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
