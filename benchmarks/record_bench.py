"""Record a performance-trajectory snapshot: ``BENCH_columnar.json``.

Runs the columnar phase-breakdown benchmark (scalar PR-1 replica vs
columnar pipeline, per-phase timings) and the batch-throughput
benchmarks (sequential ``execute`` loop vs ``execute_batch`` for
C-PNN specs, plus the routed k-NN and range batch paths against their
pre-façade scalar loops), then writes one JSON document with the raw
seconds, the relative speedups, and the workload shape.  Future PRs re-run this script and diff the
committed snapshot to catch performance regressions without relying on
absolute wall-clock numbers from someone else's machine.

Usage::

    python benchmarks/record_bench.py [--output BENCH_columnar.json]
                                      [--repeats 3]

Wall-clock numbers are machine-dependent; the speedup ratios are the
comparable quantities.  CI uploads the JSON as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    # Running outside pytest (which supplies pythonpath=src) against a
    # non-installed checkout: use the src layout directly.
    sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

import test_batch_throughput as throughput_bench  # noqa: E402
import test_columnar_speedup as columnar_bench  # noqa: E402
import test_dynamic_updates as dynamic_bench  # noqa: E402
import test_moving_queries as moving_bench  # noqa: E402
import test_out_of_core as out_of_core_bench  # noqa: E402
import test_parametric_init as parametric_bench  # noqa: E402
import test_service_latency as service_bench  # noqa: E402
import test_sharded_parallel as sharded_bench  # noqa: E402

from repro.core.engine.executors.base import free_threaded  # noqa: E402

#: Shared best-of-N timing loop — the same reduction the pytest
#: speedup gates use, so the snapshot and the gates measure alike.
_best_of = throughput_bench._best_of


def _environment(executor: str) -> dict:
    """The execution-substrate facts every BENCH entry carries, so a
    diff between snapshots from different machines (or executor
    backends) is interpretable: a 1-core container and a 16-core
    workstation legitimately disagree about parallel speedups."""
    return {
        "cpu_count": os.cpu_count(),
        "free_threaded": free_threaded(),
        "executor": executor,
    }


def measure_batch_throughput(repeats: int) -> dict:
    """Best-of-``repeats`` sequential execute() loop vs execute_batch."""
    engine, points = throughput_bench.engine_and_points()
    specs = throughput_bench.pnn_specs(points)
    sequential = _best_of(
        repeats, lambda: throughput_bench.run_sequential(engine, points)
    )
    batch = _best_of(repeats, lambda: engine.execute_batch(specs))
    return {
        "objects": throughput_bench.BATCH_OBJECTS,
        "points": throughput_bench.BATCH_POINTS,
        "threshold": throughput_bench.THRESHOLD,
        "tolerance": throughput_bench.TOLERANCE,
        "sequential_s": sequential,
        "execute_batch_s": batch,
        "speedup": sequential / batch,
        **_environment("serial"),
    }


def measure_knn_throughput(repeats: int) -> dict:
    """k-NN execute_batch vs the pre-façade CKNNEngine scalar loop.

    The scalar baseline is orders of magnitude slower (it skips MBR
    filtering and integrates against all objects), so it is timed once
    on a small point sample and the speedup compares per-query times —
    the same protocol as the acceptance gate in
    ``test_batch_throughput.py``.
    """
    engine, points = throughput_bench.engine_and_points()
    specs = throughput_bench.knn_specs(points)
    legacy_per_query = _best_of(
        1, lambda: throughput_bench.run_knn_legacy(engine, points)
    ) / throughput_bench.KNN_LEGACY_POINTS
    batch_per_query = _best_of(
        repeats, lambda: engine.execute_batch(specs)
    ) / len(specs)
    return {
        "objects": throughput_bench.BATCH_OBJECTS,
        "points": len(specs),
        "k": throughput_bench.KNN_K,
        "threshold": throughput_bench.KNN_THRESHOLD,
        "scalar_loop_s_per_query": legacy_per_query,
        "execute_batch_s_per_query": batch_per_query,
        "speedup": legacy_per_query / batch_per_query,
        **_environment("serial"),
    }


def measure_range_throughput(repeats: int) -> dict:
    """Range execute_batch vs the pre-façade scalar loop."""
    engine, points = throughput_bench.engine_and_points()
    specs = throughput_bench.range_specs(points)
    legacy = _best_of(
        repeats, lambda: throughput_bench.run_range_legacy(engine, points)
    )
    batch = _best_of(repeats, lambda: engine.execute_batch(specs))
    return {
        "objects": throughput_bench.BATCH_OBJECTS,
        "points": len(specs),
        "radius": throughput_bench.RANGE_RADIUS,
        "threshold": throughput_bench.RANGE_THRESHOLD,
        "scalar_loop_s": legacy,
        "execute_batch_s": batch,
        "speedup": legacy / batch,
        **_environment("serial"),
    }


def measure_dynamic_updates(repeats: int) -> dict:
    """Streaming update/query stream: incremental engine vs a
    full-rebuild replica (fresh engine per tick), best-of-``repeats``.

    Fresh engines/replicas per repetition replay the same
    pre-materialised ticks, so the two pipelines time identical work.
    """
    import time

    state = dynamic_bench.streaming_state()
    workload = state["workload"]

    def run_incremental():
        engine = workload.make_engine()
        dynamic_bench.run_incremental(engine, state["warmup"])
        tick = time.perf_counter()
        dynamic_bench.run_incremental(engine, state["measured"])
        return time.perf_counter() - tick

    def run_replica():
        replica = dynamic_bench.FullRebuildReplica(workload)
        for t in state["warmup"]:
            replica.apply(t)
        tick = time.perf_counter()
        dynamic_bench.run_replica(replica, state["measured"])
        return time.perf_counter() - tick

    incremental = min(run_incremental() for _ in range(repeats))
    replica = min(run_replica() for _ in range(repeats))
    ticks = dynamic_bench.MEASURED_TICKS
    return {
        "objects": dynamic_bench.STREAM_OBJECTS,
        "churn_per_tick": dynamic_bench.STREAM_CHURN,
        "specs_per_tick": dynamic_bench.STREAM_QUERIES,
        "measured_ticks": ticks,
        "incremental_s_per_tick": incremental / ticks,
        "full_rebuild_s_per_tick": replica / ticks,
        "speedup": replica / incremental,
        **_environment("serial"),
    }


def measure_moving_queries(repeats: int) -> dict:
    """Continuous monitoring fleet: safe-region ticks vs re-executing
    all registered queries per tick (DESIGN.md §17), best-of-``repeats``.

    Fresh engines/monitors per repetition replay the same
    pre-materialised ticks; the recorded escape rate is the worst
    measured tick's (the acceptance gate bounds it at 10%).
    """
    import time

    from repro.continuous import ContinuousMonitor

    state = moving_bench.moving_state()
    workload = state["workload"]

    def run_baseline():
        engine = workload.make_engine()
        moving_bench.run_baseline(engine, state["warmup"])
        tick = time.perf_counter()
        moving_bench.run_baseline(engine, state["measured"])
        return time.perf_counter() - tick

    def run_monitored():
        monitor = ContinuousMonitor(workload.make_engine())
        monitor.register_many(list(workload.specs))
        moving_bench.run_monitored(monitor, state["warmup"])
        tick = time.perf_counter()
        reports = moving_bench.run_monitored(monitor, state["measured"])
        return time.perf_counter() - tick, reports

    baseline = min(run_baseline() for _ in range(repeats))
    timed = [run_monitored() for _ in range(repeats)]
    monitored = min(seconds for seconds, _ in timed)
    reports = timed[0][1]
    ticks = moving_bench.MEASURED_TICKS
    return {
        "objects": moving_bench.MOVING_OBJECTS,
        "churn_per_tick": moving_bench.MOVING_CHURN,
        "registered_queries": moving_bench.MOVING_QUERIES,
        "measured_ticks": ticks,
        "reexecute_all_s_per_tick": baseline / ticks,
        "monitored_s_per_tick": monitored / ticks,
        "speedup": baseline / monitored,
        "max_escape_rate": max(r.escape_rate for r in reports),
        **_environment("serial"),
    }


def measure_sharded_parallel(repeats: int) -> dict:
    """Sharded vs single-engine cold batch throughput (DESIGN.md §12).

    Both pipelines rebuild their engines per repetition and time one
    cold ``execute_batch`` — warm repetitions would replay memoised
    result snapshots in both and measure only the cache.  The speedup
    is machine-shaped: ~1× (pure fan-out overhead) on one core, ≥ 2×
    expected from 4 cores (the ``test_sharded_parallel.py`` gate).
    """
    objects, specs = sharded_bench.objects_and_specs()
    single = min(
        sharded_bench._cold_single(objects, specs)[0] for _ in range(repeats)
    )
    sharded = min(
        sharded_bench._cold_sharded(objects, specs)[0] for _ in range(repeats)
    )
    return {
        "objects": sharded_bench.SHARDED_OBJECTS,
        "points": sharded_bench.SHARDED_POINTS,
        "mean_interval_length": sharded_bench.MEAN_LENGTH,
        "n_shards": sharded_bench.N_SHARDS,
        "single_cold_s": single,
        "sharded_cold_s": sharded,
        "speedup": single / sharded,
        **_environment("thread"),
    }


def measure_process_executor(repeats: int) -> dict:
    """Process-backend sharded vs single-engine cold batch throughput
    (DESIGN.md §13): same workload and protocol as
    :func:`measure_sharded_parallel`, but the C-PNN fan-out ships to a
    pre-warmed spawn-based worker pool.  On a 1-core container the
    speedup records the pipe/pickle overhead; with ≥ 2 cores the
    ``test_sharded_parallel.py`` gate demands ≥ 1.6×.
    """
    objects, specs = sharded_bench.objects_and_specs()
    single = min(
        sharded_bench._cold_single(objects, specs)[0] for _ in range(repeats)
    )
    process = min(
        sharded_bench._cold_sharded_process(objects, specs)[0]
        for _ in range(repeats)
    )
    return {
        "objects": sharded_bench.SHARDED_OBJECTS,
        "points": sharded_bench.SHARDED_POINTS,
        "mean_interval_length": sharded_bench.MEAN_LENGTH,
        "n_shards": sharded_bench.N_SHARDS,
        "single_cold_s": single,
        "process_cold_s": process,
        "speedup": single / process,
        **_environment("process"),
    }


def measure_parametric_init(repeats: int) -> dict:
    """Parametric vs eager-histogram initialisation on the Gaussian
    workload (DESIGN.md §15): object-set build plus per-query
    initialisation for a fig14-style batch, best-of-``repeats``, with
    every repetition's answer sets cross-checked for contract
    compatibility.  The init speedup is the issue's gated quantity
    (≥ 3x locally)."""
    return {
        **parametric_bench.measure(repeats),
        **_environment("serial"),
    }


def measure_service_latency(repeats: int) -> dict:
    """Coalescing service vs a one-query-per-dispatch service under the
    same burst (DESIGN.md §14): client-observed p50/p99 and served QPS
    for both configurations, answers identity-checked first.  The p50
    speedup is the comparable quantity — both runs pay the same asyncio
    plumbing, so the ratio isolates the micro-batch amortisation.
    The ``mixed_traffic`` sub-entry replays query waves separated by
    awaited inserts — correctness-gated in the bench suite, timing
    recorded here."""
    return {
        **service_bench.measure(repeats),
        "mixed_traffic": service_bench.measure_mixed(repeats),
        **_environment("serial"),
    }


def measure_out_of_core(repeats: int) -> dict:
    """Paged (mmap, cold pool) vs resident full-corpus cdf sweep
    (DESIGN.md §16): the slowdown of page-granular streaming is the
    recorded trajectory quantity — identity and deterministic fault
    accounting are gated in ``test_out_of_core.py``, not here."""
    return {
        **out_of_core_bench.measure(repeats),
        **_environment("serial"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_columnar.json",
        help="where to write the snapshot (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions per pipeline; best run is recorded",
    )
    args = parser.parse_args(argv)

    _, _, distributions = columnar_bench.workload()
    sizes = [len(d) for d in distributions]
    snapshot = {
        "bench": "columnar-kernels",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workload": {
            "objects": columnar_bench.BENCH_OBJECTS,
            "points": columnar_bench.BENCH_POINTS,
            "mean_interval_length": columnar_bench.MEAN_LENGTH,
            "avg_candidates": float(np.mean(sizes)),
            "max_candidates": int(max(sizes)),
            "strategy": "vr",
        },
        "phase_breakdown": {
            "primary": columnar_bench.measure(
                columnar_bench.PRIMARY, repeats=args.repeats
            ),
            "refinement_stress": columnar_bench.measure(
                columnar_bench.REFINEMENT_STRESS, repeats=args.repeats
            ),
        },
        "batch_throughput": measure_batch_throughput(args.repeats),
        "knn_batch_throughput": measure_knn_throughput(args.repeats),
        "range_batch_throughput": measure_range_throughput(args.repeats),
        "dynamic_updates": measure_dynamic_updates(args.repeats),
        "moving_queries": measure_moving_queries(args.repeats),
        "sharded_parallel": measure_sharded_parallel(args.repeats),
        "process_executor": measure_process_executor(args.repeats),
        "service_latency": measure_service_latency(args.repeats),
        "parametric_init": measure_parametric_init(args.repeats),
        "out_of_core": measure_out_of_core(args.repeats),
    }
    with open(args.output, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=False)
        handle.write("\n")
    primary = snapshot["phase_breakdown"]["primary"]["speedup"]
    print(
        f"wrote {args.output}: primary combined speedup "
        f"{primary['combined']:.2f}x "
        f"(init {primary['initialization']:.2f}x), batch throughput "
        f"{snapshot['batch_throughput']['speedup']:.2f}x, "
        f"knn batch {snapshot['knn_batch_throughput']['speedup']:.0f}x, "
        f"range batch {snapshot['range_batch_throughput']['speedup']:.2f}x, "
        f"dynamic updates {snapshot['dynamic_updates']['speedup']:.2f}x, "
        f"moving queries {snapshot['moving_queries']['speedup']:.0f}x, "
        f"service p50 {snapshot['service_latency']['p50_speedup']:.2f}x, "
        f"parametric init {snapshot['parametric_init']['init_speedup']:.2f}x, "
        f"paged sweep {snapshot['out_of_core']['paged_slowdown']:.2f}x resident"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
