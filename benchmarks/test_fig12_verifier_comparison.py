"""Figure 12 / Table III bench: the cost of each verifier in the
chain, measured on identical pre-built subregion tables.

Expected shape: RS ≪ L-SR ≈ U-SR (Table III's O(|C|) vs O(|C|·M)),
and U-SR ≈ L-SR because both reuse the cached exclusion products
(Appendix I's observation)."""

import pytest

from repro.core.subregions import SubregionTable
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
)

VERIFIERS = {
    "RS": RightmostSubregionVerifier(),
    "L-SR": LowerSubregionVerifier(),
    "U-SR": UpperSubregionVerifier(),
}


@pytest.fixture(scope="module")
def tables(uniform_engine, bench_queries):
    cases = []
    for q in bench_queries:
        result = uniform_engine._filter(q)
        dists = [obj.distance_distribution(q) for obj in result.candidates]
        cases.append(SubregionTable(dists))
    return cases


@pytest.mark.parametrize("name", list(VERIFIERS))
def test_verifier_cost_on_fresh_tables(benchmark, tables, name):
    """Rebuild the table each round: no shared Z-product cache."""
    verifier = VERIFIERS[name]

    def run():
        return [
            verifier.compute(SubregionTable(table.distributions))
            for table in tables
        ]

    benchmark.group = "fig12 verifier (cold)"
    benchmark(run)


@pytest.mark.parametrize("name", list(VERIFIERS))
def test_verifier_cost_with_shared_cache(benchmark, tables, name):
    """Tables prebuilt once: measures the pure verifier arithmetic."""
    verifier = VERIFIERS[name]
    for table in tables:  # warm the cached products
        table.Z
    benchmark.group = "fig12 verifier (warm)"
    benchmark(lambda: [verifier.compute(table) for table in tables])
