"""Bench: I/O profile of the disk-page subregion storage (§IV-D).

Measures the page-fault count of one full verifier pass as the
candidate-set size (and hence total entries O(|C|·M)) grows, and the
wall-clock overhead of the paged path vs the in-memory verifiers."""

import numpy as np
import pytest

from repro.core.storage import SubregionStore, subregion_bounds_from_store
from repro.core.subregions import SubregionTable
from repro.core.verifiers import LowerSubregionVerifier, UpperSubregionVerifier
from repro.experiments.table3_verifier_costs import build_candidate_table

SIZES = [32, 128]

_STORES: dict[int, SubregionStore] = {}


def store_for(size: int) -> SubregionStore:
    if size not in _STORES:
        table = build_candidate_table(size, np.random.default_rng(size))
        _STORES[size] = SubregionStore(table, page_size=4096, pool_pages=256)
    return _STORES[size]


@pytest.mark.parametrize("size", SIZES)
def test_paged_verifier_pass(benchmark, size):
    store = store_for(size)
    benchmark.group = f"storage |C|={size}"
    benchmark.name = "paged"
    benchmark(lambda: subregion_bounds_from_store(store))


@pytest.mark.parametrize("size", SIZES)
def test_in_memory_verifier_pass(benchmark, size):
    table = store_for(size).table
    lsr, usr = LowerSubregionVerifier(), UpperSubregionVerifier()

    def run():
        fresh = SubregionTable(table.distributions)
        return lsr.compute(fresh), usr.compute(fresh)

    benchmark.group = f"storage |C|={size}"
    benchmark.name = "in-memory"
    benchmark(run)


@pytest.mark.parametrize("size", SIZES)
def test_sequential_fault_count_is_page_count(size, benchmark):
    """One cold pass faults exactly the O(|C|·M/B) data pages."""
    store = store_for(size)

    def run():
        store.pool.drop_cache()
        store.pool.reset_stats()
        subregion_bounds_from_store(store)
        return store.pool.stats.page_faults

    benchmark.group = "storage fault counts"
    benchmark.name = f"|C|={size}"
    faults = benchmark(run)
    assert faults == store.n_pages
