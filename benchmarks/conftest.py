"""Shared fixtures for the benchmark suite.

Each module regenerates one figure/table of the paper's Section V as a
set of pytest-benchmark measurements (see DESIGN.md §9 for the
mapping).  Sizes are scaled down from the paper's 53,144-interval
dataset so the whole suite runs in minutes; the experiment CLI
(``python -m repro.experiments all``) runs the full-scale versions and
prints the exact series the paper plots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig, UncertainEngine
from repro.datasets.longbeach import long_beach_surrogate
from repro.datasets.queries import random_query_points

#: Dataset size used by the benchmark engines (paper: 53,144).
BENCH_SIZE = 10_000

#: Number of query points averaged per measurement (paper: 100).
BENCH_QUERIES = 5


@pytest.fixture(scope="session")
def uniform_engine() -> UncertainEngine:
    """Engine over the uniform-pdf Long Beach surrogate."""
    return UncertainEngine(long_beach_surrogate(n=BENCH_SIZE))


@pytest.fixture(scope="session")
def gaussian_engine() -> UncertainEngine:
    """Engine over the Gaussian-pdf surrogate (Figure 14's setting)."""
    return UncertainEngine(long_beach_surrogate(n=4_000, pdf="gaussian", bars=300))


@pytest.fixture(scope="session")
def bench_queries() -> np.ndarray:
    """Deterministic query points shared by every benchmark."""
    rng = np.random.default_rng(20080407)
    return random_query_points(BENCH_QUERIES, rng=rng)
