"""Bench: coalesced service latency vs a one-query-per-dispatch loop.

The service exists so ad-hoc single-query traffic rides the engine's
batch amortisation (shared endpoint sweeps, shared subregion tables).
This bench offers the same burst of single-query submissions to two
service configurations:

* **naive** — ``coalesce_window_s=0``, ``max_batch=1``: every request
  is its own engine dispatch, exactly a sequential ``execute`` loop
  with asyncio plumbing on top;
* **coalesced** — a ~2 ms window and ``max_batch=32``: requests gather
  into micro-batches.

Both runs serve the identical burst on a cold engine, both report
client-observed p50/p99 latency (submit → reply, queueing included)
and served QPS, and the answers are asserted identical across runs
before any timing is compared — the speedup can never be bought with
approximation.

The gate is deliberately generous — coalescing wins by integer factors
when it works at all — and ``SERVICE_COALESCE_SPEEDUP_FLOOR`` overrides
it for small or noisy CI runners (same convention as
``SHARDED_SPEEDUP_FLOOR`` in ``test_sharded_parallel.py``).
"""

import asyncio
import os
import time

import numpy as np

from repro.core.engine import UncertainEngine
from repro.core.types import CPNNQuery
from repro.datasets.longbeach import long_beach_surrogate
from repro.service import QueryService, ServiceConfig

SERVICE_OBJECTS = 2_000
SERVICE_POINTS = 96
THRESHOLD = 0.3
TOLERANCE = 0.0

COALESCE_WINDOW_S = 0.002
COALESCE_MAX_BATCH = 32

_STATE: dict = {}


def _floor() -> float:
    env = os.environ.get("SERVICE_COALESCE_SPEEDUP_FLOOR")
    if env is not None:
        return float(env)
    # Batch amortisation is single-core arithmetic sharing, not
    # parallelism, so the default floor does not depend on cpu_count.
    return 1.2


def objects_and_specs():
    if not _STATE:
        objects = long_beach_surrogate(n=SERVICE_OBJECTS)
        rng = np.random.default_rng(20080407)
        points = rng.uniform(0.0, 10_000.0, size=SERVICE_POINTS)
        specs = [
            CPNNQuery(float(q), threshold=THRESHOLD, tolerance=TOLERANCE)
            for q in points
        ]
        _STATE["objects"] = objects
        _STATE["specs"] = specs
    return _STATE["objects"], _STATE["specs"]


def serve_burst(window_s: float, max_batch: int) -> dict:
    """Offer the whole burst at once to a fresh cold engine behind a
    service; return client-observed latencies and answers."""
    objects, specs = objects_and_specs()
    engine = UncertainEngine(list(objects))
    config = ServiceConfig(
        coalesce_window_s=window_s,
        max_batch=max_batch,
        max_queue=max(len(specs) * 2, 256),
    )

    async def main():
        async with QueryService(engine, config) as service:
            latencies = [0.0] * len(specs)
            answers = [None] * len(specs)

            async def one(index, spec):
                tick = time.perf_counter()
                reply = await service.submit(spec)
                latencies[index] = time.perf_counter() - tick
                answers[index] = reply.result.answers

            tick = time.perf_counter()
            await asyncio.gather(
                *[one(i, s) for i, s in enumerate(specs)]
            )
            wall = time.perf_counter() - tick
            return latencies, answers, wall, service.stats()

    latencies, answers, wall, stats = asyncio.run(main())
    return {
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "qps": len(specs) / wall,
        "wall_s": wall,
        "mean_batch": stats["mean_batch"],
        "answers": answers,
    }


def measure(repeats: int = 1) -> dict:
    """Best-of-``repeats`` for both configurations, identity-checked."""
    naive = serve_burst(0.0, 1)
    coalesced = serve_burst(COALESCE_WINDOW_S, COALESCE_MAX_BATCH)
    assert coalesced["answers"] == naive["answers"]
    for _ in range(repeats - 1):
        candidate = serve_burst(0.0, 1)
        if candidate["p50_ms"] < naive["p50_ms"]:
            naive = candidate
        candidate = serve_burst(COALESCE_WINDOW_S, COALESCE_MAX_BATCH)
        if candidate["p50_ms"] < coalesced["p50_ms"]:
            coalesced = candidate
    return {
        "objects": SERVICE_OBJECTS,
        "points": SERVICE_POINTS,
        "threshold": THRESHOLD,
        "tolerance": TOLERANCE,
        "coalesce_window_ms": COALESCE_WINDOW_S * 1e3,
        "max_batch": COALESCE_MAX_BATCH,
        "naive_p50_ms": naive["p50_ms"],
        "naive_p99_ms": naive["p99_ms"],
        "naive_qps": naive["qps"],
        "coalesced_p50_ms": coalesced["p50_ms"],
        "coalesced_p99_ms": coalesced["p99_ms"],
        "coalesced_qps": coalesced["qps"],
        "coalesced_mean_batch": coalesced["mean_batch"],
        "p50_speedup": naive["p50_ms"] / coalesced["p50_ms"],
        "qps_speedup": coalesced["qps"] / naive["qps"],
    }


def test_coalesced_service_beats_naive_loop():
    """The gate: identical answers always; coalesced p50 under burst
    load beats the one-query-per-dispatch loop by the floor."""
    floor = _floor()
    snapshot = measure(repeats=2)
    assert snapshot["coalesced_mean_batch"] > 1.5, (
        "coalescer never formed micro-batches "
        f"(mean batch {snapshot['coalesced_mean_batch']:.2f})"
    )
    assert snapshot["p50_speedup"] >= floor, (
        f"coalesced p50 {snapshot['coalesced_p50_ms']:.1f} ms is only "
        f"{snapshot['p50_speedup']:.2f}x the naive loop's "
        f"{snapshot['naive_p50_ms']:.1f} ms (floor {floor}x; override "
        f"with SERVICE_COALESCE_SPEEDUP_FLOOR)"
    )
