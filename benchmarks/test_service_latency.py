"""Bench: coalesced service latency vs a one-query-per-dispatch loop.

The service exists so ad-hoc single-query traffic rides the engine's
batch amortisation (shared endpoint sweeps, shared subregion tables).
This bench offers the same burst of single-query submissions to two
service configurations:

* **naive** — ``coalesce_window_s=0``, ``max_batch=1``: every request
  is its own engine dispatch, exactly a sequential ``execute`` loop
  with asyncio plumbing on top;
* **coalesced** — a ~2 ms window and ``max_batch=32``: requests gather
  into micro-batches.

Both runs serve the identical burst on a cold engine, both report
client-observed p50/p99 latency (submit → reply, queueing included)
and served QPS, and the answers are asserted identical across runs
before any timing is compared — the speedup can never be bought with
approximation.

The gate is deliberately generous — coalescing wins by integer factors
when it works at all — and ``SERVICE_COALESCE_SPEEDUP_FLOOR`` overrides
it for small or noisy CI runners (same convention as
``SHARDED_SPEEDUP_FLOOR`` in ``test_sharded_parallel.py``).  Timings
are best-of-3 on both sides: one slow outlier run (GC pause, noisy
neighbour) cannot fail the gate, only a *consistent* regression can.

A second case offers **mixed traffic** — waves of concurrent queries
separated by awaited engine mutations, so every wave sees a different
object set.  Mutations serialise the dispatch loop, which makes the
speedup noisy, so the mixed gate is correctness-shaped: identical
answers between the two configurations (the mutation barriers make the
interleaving deterministic), answers that actually change across waves
(the updates are visible), and micro-batches that still form.  The
timings are recorded for the BENCH snapshot, not gated.
"""

import asyncio
import os
import time

import numpy as np

from repro.core.engine import UncertainEngine
from repro.core.types import CPNNQuery
from repro.datasets.longbeach import long_beach_surrogate
from repro.service import QueryService, ServiceConfig
from repro.uncertainty.objects import UncertainObject

SERVICE_OBJECTS = 2_000
SERVICE_POINTS = 96
THRESHOLD = 0.3
TOLERANCE = 0.0

COALESCE_WINDOW_S = 0.002
COALESCE_MAX_BATCH = 32

#: Mixed-traffic shape: ``MIXED_WAVES`` bursts of ``MIXED_POINTS``
#: concurrent queries, separated by one awaited insert per wave.
MIXED_WAVES = 4
MIXED_POINTS = 24

#: Timing repetitions for both cases — the best run is kept, so a
#: single noisy repetition cannot fail a gate.
BEST_OF = 3

_STATE: dict = {}


def _floor() -> float:
    env = os.environ.get("SERVICE_COALESCE_SPEEDUP_FLOOR")
    if env is not None:
        return float(env)
    # Batch amortisation is single-core arithmetic sharing, not
    # parallelism, so the default floor does not depend on cpu_count.
    return 1.2


def objects_and_specs():
    if not _STATE:
        objects = long_beach_surrogate(n=SERVICE_OBJECTS)
        rng = np.random.default_rng(20080407)
        points = rng.uniform(0.0, 10_000.0, size=SERVICE_POINTS)
        specs = [
            CPNNQuery(float(q), threshold=THRESHOLD, tolerance=TOLERANCE)
            for q in points
        ]
        _STATE["objects"] = objects
        _STATE["specs"] = specs
    return _STATE["objects"], _STATE["specs"]


def serve_burst(window_s: float, max_batch: int) -> dict:
    """Offer the whole burst at once to a fresh cold engine behind a
    service; return client-observed latencies and answers."""
    objects, specs = objects_and_specs()
    engine = UncertainEngine(list(objects))
    config = ServiceConfig(
        coalesce_window_s=window_s,
        max_batch=max_batch,
        max_queue=max(len(specs) * 2, 256),
    )

    async def main():
        async with QueryService(engine, config) as service:
            latencies = [0.0] * len(specs)
            answers = [None] * len(specs)

            async def one(index, spec):
                tick = time.perf_counter()
                reply = await service.submit(spec)
                latencies[index] = time.perf_counter() - tick
                answers[index] = reply.result.answers

            tick = time.perf_counter()
            await asyncio.gather(
                *[one(i, s) for i, s in enumerate(specs)]
            )
            wall = time.perf_counter() - tick
            return latencies, answers, wall, service.stats()

    latencies, answers, wall, stats = asyncio.run(main())
    return {
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "qps": len(specs) / wall,
        "wall_s": wall,
        "mean_batch": stats["mean_batch"],
        "answers": answers,
    }


def mixed_specs():
    """Per-wave query specs for the mixed case — a deterministic slice
    of the main burst's point stream, re-thresholded per wave."""
    _, specs = objects_and_specs()
    return [
        [specs[(w * MIXED_POINTS + i) % len(specs)] for i in range(MIXED_POINTS)]
        for w in range(MIXED_WAVES)
    ]


def serve_mixed_burst(window_s: float, max_batch: int) -> dict:
    """Waves of concurrent queries separated by awaited inserts.

    Each wave's insert is a barrier: it is awaited before the wave's
    queries are offered, so every query in wave ``w`` sees exactly the
    base objects plus inserts ``0..w`` in *both* service
    configurations — the answers are comparable even though the two
    runs batch differently.
    """
    objects, _ = objects_and_specs()
    waves = mixed_specs()
    engine = UncertainEngine(list(objects))
    config = ServiceConfig(
        coalesce_window_s=window_s,
        max_batch=max_batch,
        max_queue=max(MIXED_WAVES * MIXED_POINTS * 2, 256),
    )

    async def main():
        async with QueryService(engine, config) as service:
            latencies: list[float] = []
            answers: list[list] = []

            async def one(sink, spec):
                tick = time.perf_counter()
                reply = await service.submit(spec)
                sink.append(time.perf_counter() - tick)
                return reply.result.answers

            tick = time.perf_counter()
            for wave, specs in enumerate(waves):
                # The hot object lands mid-range so wave answers differ.
                low = 2_000.0 + 1_500.0 * wave
                await service.insert(
                    UncertainObject.uniform(f"hot-{wave}", low, low + 250.0)
                )
                answers.append(
                    list(
                        await asyncio.gather(
                            *[one(latencies, s) for s in specs]
                        )
                    )
                )
            wall = time.perf_counter() - tick
            return latencies, answers, wall, service.stats()

    latencies, answers, wall, stats = asyncio.run(main())
    return {
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "qps": (MIXED_WAVES * MIXED_POINTS) / wall,
        "wall_s": wall,
        "mean_batch": stats["mean_batch"],
        "answers": answers,
    }


def _best_of(repeats: int, runner, reference: list) -> dict:
    """Best-of-``repeats`` (by p50) runs of ``runner``; every run's
    answers must equal ``reference`` before its timing may count."""
    best = None
    for _ in range(repeats):
        candidate = runner()
        assert candidate["answers"] == reference
        if best is None or candidate["p50_ms"] < best["p50_ms"]:
            best = candidate
    return best


def measure(repeats: int = BEST_OF) -> dict:
    """Best-of-``repeats`` for both configurations, identity-checked."""
    reference = serve_burst(0.0, 1)
    naive = _best_of(
        repeats - 1, lambda: serve_burst(0.0, 1), reference["answers"]
    ) if repeats > 1 else reference
    if reference["p50_ms"] < naive["p50_ms"]:
        naive = reference
    coalesced = _best_of(
        repeats,
        lambda: serve_burst(COALESCE_WINDOW_S, COALESCE_MAX_BATCH),
        reference["answers"],
    )
    return {
        "objects": SERVICE_OBJECTS,
        "points": SERVICE_POINTS,
        "threshold": THRESHOLD,
        "tolerance": TOLERANCE,
        "coalesce_window_ms": COALESCE_WINDOW_S * 1e3,
        "max_batch": COALESCE_MAX_BATCH,
        "naive_p50_ms": naive["p50_ms"],
        "naive_p99_ms": naive["p99_ms"],
        "naive_qps": naive["qps"],
        "coalesced_p50_ms": coalesced["p50_ms"],
        "coalesced_p99_ms": coalesced["p99_ms"],
        "coalesced_qps": coalesced["qps"],
        "coalesced_mean_batch": coalesced["mean_batch"],
        "p50_speedup": naive["p50_ms"] / coalesced["p50_ms"],
        "qps_speedup": coalesced["qps"] / naive["qps"],
    }


def measure_mixed(repeats: int = BEST_OF) -> dict:
    """Best-of-``repeats`` mixed query/update traffic, identity-checked
    per wave between the two configurations."""
    reference = serve_mixed_burst(0.0, 1)
    naive = _best_of(
        repeats - 1, lambda: serve_mixed_burst(0.0, 1), reference["answers"]
    ) if repeats > 1 else reference
    if reference["p50_ms"] < naive["p50_ms"]:
        naive = reference
    coalesced = _best_of(
        repeats,
        lambda: serve_mixed_burst(COALESCE_WINDOW_S, COALESCE_MAX_BATCH),
        reference["answers"],
    )
    # The per-wave inserts must be visible: at least one adjacent pair
    # of waves answers its (repeated) specs differently.
    waves = reference["answers"]
    assert any(a != b for a, b in zip(waves, waves[1:])), (
        "mixed-traffic inserts never changed any answer — the case "
        "degenerated into a pure query burst"
    )
    return {
        "waves": MIXED_WAVES,
        "points_per_wave": MIXED_POINTS,
        "updates": MIXED_WAVES,
        "naive_p50_ms": naive["p50_ms"],
        "naive_p99_ms": naive["p99_ms"],
        "naive_qps": naive["qps"],
        "coalesced_p50_ms": coalesced["p50_ms"],
        "coalesced_p99_ms": coalesced["p99_ms"],
        "coalesced_qps": coalesced["qps"],
        "coalesced_mean_batch": coalesced["mean_batch"],
        "p50_speedup": naive["p50_ms"] / coalesced["p50_ms"],
    }


def test_coalesced_service_beats_naive_loop():
    """The gate: identical answers always; best-of-3 coalesced p50
    under burst load beats the one-query-per-dispatch loop's best-of-3
    by the floor."""
    floor = _floor()
    snapshot = measure(repeats=BEST_OF)
    assert snapshot["coalesced_mean_batch"] > 1.5, (
        "coalescer never formed micro-batches "
        f"(mean batch {snapshot['coalesced_mean_batch']:.2f})"
    )
    assert snapshot["p50_speedup"] >= floor, (
        f"coalesced p50 {snapshot['coalesced_p50_ms']:.1f} ms is only "
        f"{snapshot['p50_speedup']:.2f}x the naive loop's "
        f"{snapshot['naive_p50_ms']:.1f} ms (floor {floor}x; override "
        f"with SERVICE_COALESCE_SPEEDUP_FLOOR)"
    )


def test_mixed_traffic_matches_and_batches():
    """Mixed query/update waves: identical answers between the two
    configurations (the inserts are awaited barriers), visibly changing
    answers across waves, and micro-batches that still form between the
    barriers.  Timing is recorded in the BENCH snapshot, not gated —
    mutations serialise the dispatch loop and make the ratio noisy."""
    snapshot = measure_mixed(repeats=BEST_OF)
    assert snapshot["coalesced_mean_batch"] > 1.2, (
        "coalescer formed no micro-batches under mixed traffic "
        f"(mean batch {snapshot['coalesced_mean_batch']:.2f})"
    )
