"""Bench: columnar distribution kernels vs the pre-columnar scalar path.

PR 2 made the numeric core columnar: :class:`DistributionPack` batches
all candidates' cdf evaluations, :class:`SubregionTable` builds its
edge grid and cdf matrix from flat pack columns, and
:meth:`Refiner.refine_objects` sweeps all surviving candidates at
once.  This module measures what that bought on the two phases the
rewrite targets — initialisation (subregion-table construction) and
refinement — for a 2000-object / 100-point VR workload, against a
faithful replica of the PR-1 per-object scalar path.

Two workloads, same data (dense-overlap intervals, |C| ≈ 765 per
query, near the paper's dense end):

* **primary** (P = 0.5, Δ = 0.01) — the verifier chain settles nearly
  every candidate, exactly the behaviour VR is designed for (Figure
  12), so the combined init+refinement time is init-dominated.  This
  is the gated measurement: combined speedup must beat the floor
  (3x locally; override with ``COLUMNAR_SPEEDUP_FLOOR``, and CI uses a
  generous floor because shared runners make wall-clock ratios noisy).
* **refinement-stress** (P = 0.35, Δ = 0.01) — candidates near the
  threshold force deep incremental refinement.  Both paths execute
  bit-identical quadrature (same nodes, same log-space bookkeeping),
  so this phase is arithmetic-bound and its ratio hovers near 1x; it
  is asserted *identical* and reported, not gated.

Every measurement asserts that labels, bounds, and answer sets from
the columnar path are **exactly equal** (not approximately) to the
scalar reference — the columnar kernels are bit-identical by design,
and this benchmark is the end-to-end enforcement of that claim.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.engine import UncertainEngine
from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.subregions import _EDGE_RTOL, SubregionTable
from repro.core.types import CPNNQuery
from repro.core.verifiers.chain import default_chain
from repro.datasets.longbeach import long_beach_surrogate

#: Objects in the benchmark engine (the workload the issue names).
BENCH_OBJECTS = 2_000

#: Query points per batch.
BENCH_POINTS = 100

#: Mean interval length — long intervals make candidate sets dense
#: (|C| ≈ 765), the regime where per-object Python dispatch dominated
#: the scalar path.
MEAN_LENGTH = 4_500.0

#: (name, threshold, tolerance) of the two measured workloads.
PRIMARY = ("primary", 0.5, 0.01)
REFINEMENT_STRESS = ("refinement-stress", 0.35, 0.01)

_STATE: dict = {}


def speedup_floor() -> float:
    """Required combined init+refinement speedup for the gated workload."""
    env = os.environ.get("COLUMNAR_SPEEDUP_FLOOR")
    if env:
        return float(env)
    if os.environ.get("CI"):
        return 1.3  # generous: shared CI runners, relative assert only
    return 3.0


def workload():
    """Engine, query points, and per-point distance distributions.

    Distributions are built once and shared by both pipelines — the
    fold cost is identical either way and is not what this benchmark
    measures.
    """
    if not _STATE:
        engine = UncertainEngine(
            long_beach_surrogate(n=BENCH_OBJECTS, mean_length=MEAN_LENGTH)
        )
        rng = np.random.default_rng(20080407)
        points = [float(q) for q in rng.uniform(0.0, 10_000.0, BENCH_POINTS)]
        filter_results = engine._filter_batch(points)
        distributions = [
            [obj.distance_distribution(q) for obj in fr.candidates]
            for fr, q in zip(filter_results, points)
        ]
        _STATE["engine"] = engine
        _STATE["points"] = points
        _STATE["distributions"] = distributions
    return _STATE["engine"], _STATE["points"], _STATE["distributions"]


# ----------------------------------------------------------------------
# The scalar reference: a faithful replica of the PR-1 per-object path
# ----------------------------------------------------------------------


class ScalarSubregionTable(SubregionTable):
    """PR-1 initialisation: per-object Python loops throughout.

    Python ``sorted`` with per-object key tuples, one masking pass per
    candidate to pool end-points, and one ``d.cdf`` call per candidate
    for the cdf matrix — exactly the code this PR replaced.  Produces
    bit-identical tables, which the benchmark asserts.
    """

    def __init__(self, distributions, grid_refinement: int = 1) -> None:
        assert grid_refinement == 1
        ordered = sorted(distributions, key=lambda d: (d.near, d.far))
        self._distributions = tuple(ordered)
        self._pack = None  # lazy, as in the small-set path
        self._fmin = min(d.far for d in ordered)
        self._fmax = max(d.far for d in ordered)
        self._edges = self._scalar_edges()
        self._cdf_matrix = np.vstack(
            [np.asarray(d.cdf(self._edges)) for d in ordered]
        )
        np.clip(self._cdf_matrix, 0.0, 1.0, out=self._cdf_matrix)

    def _scalar_edges(self) -> np.ndarray:
        n_min = min(d.near for d in self._distributions)
        pool = [np.asarray([n_min, self._fmin])]
        for dist in self._distributions:
            edges = dist.breakpoints
            pool.append(edges[(edges > n_min) & (edges < self._fmin)])
            if n_min < dist.near < self._fmin:
                pool.append(np.asarray([dist.near]))
        merged = np.sort(np.concatenate(pool))
        scale = max(abs(float(merged[0])), abs(float(merged[-1])), 1.0)
        threshold = _EDGE_RTOL * scale
        keep = np.empty(merged.size, dtype=bool)
        keep[0] = True
        np.greater(np.diff(merged), threshold, out=keep[1:])
        edges = merged[keep]
        edges[-1] = self._fmin
        return edges


class ScalarRefiner(Refiner):
    """PR-1 survival matrices: one ``d.cdf`` call per candidate."""

    def _survival_matrix(self, xs: np.ndarray) -> np.ndarray:
        rows = [1.0 - np.asarray(d.cdf(xs)) for d in self._table.distributions]
        matrix = np.vstack(rows)
        np.clip(matrix, 0.0, 1.0, out=matrix)
        return matrix


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


def run_vr_pipeline(distributions_per_point, queries, columnar: bool):
    """One VR pass over the batch; returns (init_s, refine_s, outcomes).

    Initialisation is subregion-table + refiner construction;
    verification (identical work in both pipelines) runs untimed
    between the two timed phases; refinement is the post-verifier
    incremental loop — ``refine_objects`` for the columnar pipeline,
    one ``refine_object`` per survivor for the scalar reference.
    """
    table_cls = SubregionTable if columnar else ScalarSubregionTable
    refiner_cls = Refiner if columnar else ScalarRefiner
    chain = default_chain()
    init = refine = 0.0
    outcomes = []
    for dists, query in zip(distributions_per_point, queries):
        tick = time.perf_counter()
        table = table_cls(dists)
        refiner = refiner_cls(table)
        init += time.perf_counter() - tick

        states = CandidateStates(table.keys)
        chain.run(table, states, query)

        tick = time.perf_counter()
        survivors = states.unknown_indices()
        if columnar:
            refiner.refine_objects(
                survivors, states, query, use_verifier_slices=True
            )
        else:
            for i in survivors:
                refiner.refine_object(
                    int(i), states, query, use_verifier_slices=True
                )
        refine += time.perf_counter() - tick
        outcomes.append(
            (
                tuple(states.labels.tolist()),
                tuple(states.lower.tolist()),
                tuple(states.upper.tolist()),
                frozenset(
                    key
                    for key, label in zip(table.keys, states.labels)
                    if label == 1
                ),
            )
        )
    return init, refine, outcomes


def measure(spec, repeats: int = 3) -> dict:
    """Best-of-``repeats`` phase timings of both pipelines on ``spec``.

    Asserts on *every* repetition that the columnar pipeline's labels,
    bounds, and answer sets equal the scalar reference's exactly.
    """
    name, threshold, tolerance = spec
    _, points, distributions = workload()
    queries = [
        CPNNQuery(q, threshold=threshold, tolerance=tolerance) for q in points
    ]
    best = {"scalar": (float("inf"), float("inf")), "columnar": (float("inf"), float("inf"))}
    reference = None
    for _ in range(repeats):
        s_init, s_refine, s_out = run_vr_pipeline(distributions, queries, False)
        c_init, c_refine, c_out = run_vr_pipeline(distributions, queries, True)
        assert c_out == s_out, (
            f"{name}: columnar answers/bounds differ from the scalar reference"
        )
        if reference is None:
            reference = s_out
        else:
            assert s_out == reference, f"{name}: scalar reference is unstable"
        if s_init + s_refine < sum(best["scalar"]):
            best["scalar"] = (s_init, s_refine)
        if c_init + c_refine < sum(best["columnar"]):
            best["columnar"] = (c_init, c_refine)
    s_init, s_refine = best["scalar"]
    c_init, c_refine = best["columnar"]
    return {
        "threshold": threshold,
        "tolerance": tolerance,
        "scalar_s": {"initialization": s_init, "refinement": s_refine},
        "columnar_s": {"initialization": c_init, "refinement": c_refine},
        "speedup": {
            "initialization": s_init / c_init,
            "refinement": s_refine / c_refine if c_refine else float("inf"),
            "combined": (s_init + s_refine) / (c_init + c_refine),
        },
        "identical": True,  # asserted above, every repetition
    }


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------


def test_columnar_speedup_primary():
    """Acceptance: ≥ floor combined init+refinement speedup, identical answers."""
    result = measure(PRIMARY, repeats=3)
    _STATE.setdefault("results", {})["primary"] = result
    floor = speedup_floor()
    combined = result["speedup"]["combined"]
    assert combined >= floor, (
        f"columnar init+refinement must be ≥{floor:.1f}x the scalar path, "
        f"got {combined:.2f}x "
        f"(scalar {sum(result['scalar_s'].values()) * 1e3:.0f} ms, "
        f"columnar {sum(result['columnar_s'].values()) * 1e3:.0f} ms)"
    )


def test_columnar_refinement_stress_identical():
    """Deep refinement stays bit-identical; speedup reported, not gated.

    Both pipelines execute the same quadrature (same nodes, same
    log-space zero bookkeeping), so this workload is arithmetic-bound
    and the ratio is expected near 1x — the assertion here is the
    exact-equality one inside :func:`measure`.
    """
    result = measure(REFINEMENT_STRESS, repeats=2)
    _STATE.setdefault("results", {})["refinement_stress"] = result
    assert result["identical"]


def test_workload_shape():
    """The workload is the one the issue names: 2000 objects, 100 points."""
    engine, points, distributions = workload()
    assert len(engine) == BENCH_OBJECTS
    assert len(points) == BENCH_POINTS
    sizes = [len(d) for d in distributions]
    # Dense-overlap regime: candidate sets must be large enough that
    # per-object dispatch, not numpy arithmetic, dominated the scalar
    # path — the bottleneck this PR removes.
    assert np.mean(sizes) > 300
