"""Ablation: incremental-refinement subregion ordering.

DESIGN.md §3 notes the paper's technical report (with its refinement
details) is not retrievable; we default to widest-bound-gap-first and
benchmark it against left-to-right here.  Widest-first converges in
fewer integrations, which shows up as lower Refine-strategy times."""

import pytest

from repro.core.engine import EngineConfig, UncertainEngine
from repro.core.types import CPNNQuery
from repro.datasets.longbeach import long_beach_surrogate

_ENGINES = {}


def engine_for(order: str) -> UncertainEngine:
    if order not in _ENGINES:
        objects = long_beach_surrogate(n=8_000)
        _ENGINES[order] = UncertainEngine(objects, EngineConfig(refinement_order=order))
    return _ENGINES[order]


@pytest.mark.parametrize("order", ["widest", "left"])
@pytest.mark.parametrize("strategy", ["refine", "vr"])
def test_refinement_order(benchmark, bench_queries, order, strategy):
    engine = engine_for(order)
    benchmark.group = f"ablation refinement-order ({strategy})"
    benchmark.name = order
    benchmark(
        lambda: [
            engine.execute(
                CPNNQuery(float(q), threshold=0.3, tolerance=0.01), strategy=strategy
            )
            for q in bench_queries
        ]
    )
