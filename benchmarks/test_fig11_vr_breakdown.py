"""Figure 11 bench: the three phases of VR measured in isolation.

Expected shape (paper): filtering flat in P, verification ~constant
and small, refinement shrinking to zero past P ≈ 0.3."""

import pytest

from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery
from repro.core.verifiers import default_chain


@pytest.fixture(scope="module")
def prepared(uniform_engine, bench_queries):
    """Pre-filtered candidate distributions for each query point."""
    cases = []
    for q in bench_queries:
        result = uniform_engine._filter(q)
        dists = [obj.distance_distribution(q) for obj in result.candidates]
        cases.append(dists)
    return cases


def test_filtering_phase(benchmark, uniform_engine, bench_queries):
    benchmark.group = "fig11 phases"
    benchmark(lambda: [uniform_engine._filter(q) for q in bench_queries])


def test_initialization_phase(benchmark, prepared):
    benchmark.group = "fig11 phases"
    benchmark(lambda: [SubregionTable(dists) for dists in prepared])


@pytest.mark.parametrize("threshold", [0.1, 0.5])
def test_verification_phase(benchmark, prepared, bench_queries, threshold):
    tables = [SubregionTable(dists) for dists in prepared]
    chain = default_chain()

    def verify():
        outcomes = []
        for q, table in zip(bench_queries, tables):
            states = CandidateStates(table.keys)
            outcomes.append(
                chain.run(table, states, CPNNQuery(q, threshold, 0.01))
            )
        return outcomes

    benchmark.group = "fig11 phases"
    benchmark(verify)


@pytest.mark.parametrize("threshold", [0.1, 0.5])
def test_full_vr_including_refinement(
    benchmark, uniform_engine, bench_queries, threshold
):
    benchmark.group = "fig11 phases"
    benchmark(
        lambda: [
            uniform_engine.execute(
                CPNNQuery(float(q), threshold=threshold, tolerance=0.01),
                strategy="vr",
            )
            for q in bench_queries
        ]
    )
