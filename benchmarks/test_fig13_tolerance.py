"""Figure 13 bench: effect of the tolerance Δ on query time.

A larger Δ lets verification finish more queries outright (paper:
Δ = 0.16 completes ~10% more queries than Δ = 0), so the end-to-end
time should (weakly) decrease with Δ."""

import pytest

from repro.core.types import CPNNQuery

TOLERANCES = [0.0, 0.08, 0.16]


@pytest.mark.parametrize("tolerance", TOLERANCES)
def test_vr_time_vs_tolerance(benchmark, uniform_engine, bench_queries, tolerance):
    benchmark.group = "fig13 tolerance"
    benchmark(
        lambda: [
            uniform_engine.execute(
                CPNNQuery(float(q), threshold=0.3, tolerance=tolerance),
                strategy="vr",
            )
            for q in bench_queries
        ]
    )


@pytest.mark.parametrize("tolerance", [0.0, 0.16])
def test_refinement_work_shrinks_with_tolerance(
    uniform_engine, bench_queries, tolerance, benchmark
):
    """Also record how many objects still need refinement."""

    def run():
        return sum(
            uniform_engine.execute(
                CPNNQuery(float(q), threshold=0.3, tolerance=tolerance),
                strategy="vr",
            ).refined_objects
            for q in bench_queries
        )

    benchmark.group = "fig13 refinement load"
    total = benchmark(run)
    assert total >= 0
