"""Ablation: R-tree vs linear-scan filtering, and R-tree fanout.

The R-tree's branch-and-bound visits O(log n + answer) nodes instead
of scanning all n objects; the gap widens with dataset size and is the
reason filtering stays flat in Figure 9 while Basic grows."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, UncertainEngine
from repro.datasets.longbeach import long_beach_surrogate
from repro.datasets.queries import random_query_points

_OBJECTS = {}
_ENGINES = {}


def objects_for(n: int):
    if n not in _OBJECTS:
        _OBJECTS[n] = long_beach_surrogate(n=n)
    return _OBJECTS[n]


def engine_for(n: int, use_rtree: bool, fanout: int = 16) -> UncertainEngine:
    key = (n, use_rtree, fanout)
    if key not in _ENGINES:
        _ENGINES[key] = UncertainEngine(
            objects_for(n),
            EngineConfig(use_rtree=use_rtree, rtree_max_entries=fanout),
        )
    return _ENGINES[key]


def queries():
    rng = np.random.default_rng(20080407)
    return random_query_points(5, rng=rng)


@pytest.mark.parametrize("n", [4_000, 16_000])
@pytest.mark.parametrize("use_rtree", [True, False], ids=["rtree", "linear"])
def test_filtering_index_choice(benchmark, n, use_rtree):
    engine = engine_for(n, use_rtree)
    pts = queries()
    benchmark.group = f"ablation index |T|={n}"
    benchmark(lambda: [engine._filter(q) for q in pts])


@pytest.mark.parametrize("fanout", [4, 16, 64])
def test_rtree_fanout(benchmark, fanout):
    engine = engine_for(16_000, True, fanout)
    pts = queries()
    benchmark.group = "ablation rtree fanout"
    benchmark.name = f"fanout={fanout}"
    benchmark(lambda: [engine._filter(q) for q in pts])
