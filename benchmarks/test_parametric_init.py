"""Bench: parametric Gaussian workload vs the eager-histogram path.

PR 8 added closed-form distance distributions (DESIGN.md §15): on the
Figure-14 Gaussian workload the engine's VR strategy builds an
:class:`~repro.uncertainty.parametric.table.AnalyticTable` straight
from model parameters instead of folding 300-bar histograms per
candidate.  This bench measures what that bought on the end-to-end
cost the paper calls *initialisation* — building the object set plus
the per-query distance-distribution/subregion-table work — for a
fig14-style batch, against the paper-faithful eager-histogram
representation of the *same* intervals.

The gated quantity is the init speedup
(``(histogram build + init) / (parametric build + init)``, best of
``repeats``); the floor is 3x locally (the issue's acceptance bar),
overridable with ``PARAMETRIC_INIT_SPEEDUP_FLOOR``, and CI supplies a
generous floor because shared runners make ratios noisy.

Answers are cross-checked: the two representations may legally settle
*borderline* candidates differently (tolerance-collapse can label a
candidate whose certified interval straddles P within Δ without
refining it to the exact side), so any answer-set difference is
asserted to be exactly that kind of candidate — anything else fails.
"""

from __future__ import annotations

import os
import time

from repro.core.engine import UncertainEngine
from repro.core.types import CPNNQuery
from repro.datasets.longbeach import long_beach_surrogate
from repro.datasets.queries import random_query_points

import numpy as np

#: Objects in the Gaussian workload (fig14 shape, scaled for CI).
BENCH_OBJECTS = 4_000

#: Query points per batch.
BENCH_POINTS = 40

#: Histogram bars per Gaussian — the paper's 300.
BARS = 300

THRESHOLD = 0.5
TOLERANCE = 0.01


def speedup_floor() -> float:
    """Required init speedup of the parametric representation."""
    env = os.environ.get("PARAMETRIC_INIT_SPEEDUP_FLOOR")
    if env:
        return float(env)
    if os.environ.get("CI"):
        return 1.5  # generous: shared runners, relative assert only
    return 3.0


def bench_specs() -> list[CPNNQuery]:
    rng = np.random.default_rng(20080199)
    points = random_query_points(BENCH_POINTS, rng=rng)
    return [
        CPNNQuery(float(q), threshold=THRESHOLD, tolerance=TOLERANCE)
        for q in points
    ]


def run_representation(representation: str) -> dict:
    """Build the workload and run one cold fig14-style batch.

    Returns wall-clock splits (object+engine build, per-query
    initialisation summed from the engine's own phase timings, total
    batch) and the per-query answer sets / bound records for the
    cross-check.
    """
    specs = bench_specs()
    tick = time.perf_counter()
    objects = long_beach_surrogate(
        n=BENCH_OBJECTS, pdf="gaussian", bars=BARS, representation=representation
    )
    engine = UncertainEngine(objects)
    build_s = time.perf_counter() - tick

    tick = time.perf_counter()
    batch = engine.execute_batch(specs)
    batch_s = time.perf_counter() - tick
    init_s = batch.timings.initialization
    return {
        "build_s": build_s,
        "init_s": init_s,
        "batch_s": batch_s,
        "answers": [frozenset(r.answers) for r in batch.results],
        "records": [
            {rec.key: (rec.lower, rec.upper) for rec in r.records}
            for r in batch.results
        ],
    }


def assert_answers_compatible(parametric: dict, histogram: dict) -> None:
    """Any answer-set difference must be a legal borderline call.

    Both paths satisfy the C-PNN contract; they may only disagree on
    candidates whose certified interval straddles ``P`` within ``Δ``
    (the tolerance-collapse rule lets either path accept such a
    candidate without refining out the exact side).
    """
    for p_ans, h_ans, h_rec in zip(
        parametric["answers"], histogram["answers"], histogram["records"]
    ):
        for key in p_ans.symmetric_difference(h_ans):
            lower, upper = h_rec[key]
            assert (
                lower <= THRESHOLD + TOLERANCE
                and upper >= THRESHOLD - TOLERANCE
            ), (
                f"answer sets diverge on a non-borderline candidate {key!r}: "
                f"certified interval [{lower:.6f}, {upper:.6f}] vs "
                f"P={THRESHOLD} Δ={TOLERANCE}"
            )


def measure(repeats: int = 3) -> dict:
    """Best-of-``repeats`` init comparison; answers cross-checked every run."""
    best = {"parametric": float("inf"), "histogram": float("inf")}
    splits: dict[str, dict] = {}
    for _ in range(repeats):
        parametric = run_representation("parametric")
        histogram = run_representation("histogram")
        assert_answers_compatible(parametric, histogram)
        for name, run in (("parametric", parametric), ("histogram", histogram)):
            total = run["build_s"] + run["init_s"]
            if total < best[name]:
                best[name] = total
                splits[name] = {
                    "build_s": run["build_s"],
                    "init_s": run["init_s"],
                    "batch_s": run["batch_s"],
                }
    return {
        "objects": BENCH_OBJECTS,
        "points": BENCH_POINTS,
        "bars": BARS,
        "threshold": THRESHOLD,
        "tolerance": TOLERANCE,
        "parametric_s": splits["parametric"],
        "histogram_s": splits["histogram"],
        "init_speedup": best["histogram"] / best["parametric"],
    }


def test_parametric_init_speedup():
    """Acceptance: parametric init beats eager histograms by the floor."""
    result = measure(repeats=3)
    floor = speedup_floor()
    speedup = result["init_speedup"]
    assert speedup >= floor, (
        f"parametric init must be ≥{floor:.1f}x the histogram path, got "
        f"{speedup:.2f}x (histogram "
        f"{(result['histogram_s']['build_s'] + result['histogram_s']['init_s']) * 1e3:.0f} ms, "
        f"parametric "
        f"{(result['parametric_s']['build_s'] + result['parametric_s']['init_s']) * 1e3:.0f} ms)"
    )
